//! **Open MPI-J** — the comparator library of the paper's evaluation: the
//! same Java-bindings API, bound to the simulated Open MPI 4.1.2 + UCX
//! 1.13 native library.
//!
//! The API surface is shared with `mvapich2j` (both follow the Open MPI
//! Java bindings); what differs is the [`flavor`] and the native profile:
//!
//! * flat, topology-unaware collective defaults with heavier software
//!   overheads (Figures 14–17);
//! * a slower small-message shared-memory path (Figure 5);
//! * slightly better large-message network bandwidth (Figure 13);
//! * **no support for Java arrays with non-blocking point-to-point
//!   operations** — `isend_array`/`irecv_array` raise
//!   [`mvapich2j::BindError::Unsupported`], which is why the paper's
//!   bandwidth plots have no "Open MPI-J arrays" series.
//!
//! ```
//! use openmpij::job_config;
//! use mvapich2j::{run_job, Topology};
//!
//! let results = run_job(job_config(Topology::single_node(2)), |env| {
//!     assert_eq!(env.flavor().name, "Open MPI-J");
//!     let arr = env.new_array::<i32>(4).unwrap();
//!     // The documented restriction:
//!     assert!(env.isend_array(arr, 4, (env.rank() + 1) % 2, 0, env.world()).is_err());
//!     env.rank()
//! });
//! assert_eq!(results, vec![0, 1]);
//! ```

pub use mvapich2j::{
    run_job, run_job_with_obs, BindError, BindResult, Env, JRequest, JStatus, JWin, JobConfig,
    TestOutcome, OPENMPIJ,
};

use mvapich2j::Topology;

/// Job configuration for an Open MPI-J run: the Open MPI-J flavor over
/// the Open MPI + UCX native profile.
pub fn job_config(topo: Topology) -> JobConfig {
    JobConfig::mvapich2j(topo).with_flavor(OPENMPIJ, mpisim::Profile::openmpi_ucx())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvapich2j::datatype::INT;
    use mvapich2j::Topology;

    #[test]
    fn identity_and_profile() {
        let cfg = job_config(Topology::single_node(2));
        assert_eq!(cfg.flavor.name, "Open MPI-J");
        assert_eq!(cfg.profile.name, "Open MPI");
        assert!(!cfg.flavor.arrays_with_nonblocking);
    }

    #[test]
    fn blocking_array_communication_works() {
        run_job(job_config(Topology::single_node(2)), |env| {
            let w = env.world();
            if env.rank() == 0 {
                let arr = env.new_array::<i32>(16).unwrap();
                for i in 0..16 {
                    env.array_set(arr, i, i as i32).unwrap();
                }
                env.send_array(arr, 16, 1, 0, w).unwrap();
            } else {
                let arr = env.new_array::<i32>(16).unwrap();
                env.recv_array(arr, 16, 0, 0, w).unwrap();
                assert_eq!(env.array_get(arr, 15).unwrap(), 15);
            }
        });
    }

    #[test]
    fn nonblocking_arrays_rejected() {
        run_job(job_config(Topology::single_node(2)), |env| {
            let w = env.world();
            let arr = env.new_array::<f64>(8).unwrap();
            let dst = (env.rank() + 1) % 2;
            assert!(matches!(
                env.isend_array(arr, 8, dst, 0, w),
                Err(BindError::Unsupported(_))
            ));
            assert!(matches!(
                env.irecv_array(arr, 8, dst as i32, 0, w),
                Err(BindError::Unsupported(_))
            ));
        });
    }

    #[test]
    fn nonblocking_buffers_still_work() {
        run_job(job_config(Topology::single_node(2)), |env| {
            let w = env.world();
            if env.rank() == 0 {
                let buf = env.new_direct(32);
                let r = env.isend_buffer(buf, 8, &INT, 1, 0, w).unwrap();
                env.wait(r).unwrap();
            } else {
                let buf = env.new_direct(32);
                let r = env.irecv_buffer(buf, 8, &INT, 0, 0, w).unwrap();
                let st = env.wait(r).unwrap();
                assert_eq!(st.bytes, 32);
            }
        });
    }

    #[test]
    fn openmpij_collectives_slower_than_mvapich2j_on_multinode() {
        // The native gap the paper measures in Figures 14-17, visible
        // through the Java layer.
        let topo = Topology::new(4, 4);
        let time_with = |cfg: JobConfig| {
            let t = run_job(cfg, |env| {
                let w = env.world();
                let send = env.new_direct(1024);
                let recv = env.new_direct(1024);
                env.barrier(w).unwrap();
                let t0 = env.now();
                for _ in 0..10 {
                    env.allreduce_buffer(send, recv, 256, &INT, mvapich2j::ReduceOp::Sum, w)
                        .unwrap();
                }
                (env.now() - t0).as_nanos()
            });
            t.into_iter().fold(0.0f64, f64::max)
        };
        let mv = time_with(JobConfig::mvapich2j(topo));
        let om = time_with(job_config(topo));
        assert!(om > 1.5 * mv, "mv={mv} om={om}");
    }

    #[test]
    fn pvars_visible_under_openmpij_flavor() {
        // The observability layer sees through the comparator flavor too:
        // flat allreduce algorithms, binding-call counts, process labels.
        let (_, report) = run_job_with_obs(job_config(Topology::new(2, 2)), |env| {
            let w = env.world();
            let send = env.new_direct(1024);
            let recv = env.new_direct(1024);
            env.allreduce_buffer(send, recv, 256, &INT, mvapich2j::ReduceOp::Sum, w)
                .unwrap();
        });
        assert_eq!(report.ranks.len(), 4);
        assert_eq!(
            report.ranks[1].label,
            "rank 1 (Open MPI-J, threaded engine)"
        );
        let merged = report.merged_pvars();
        // One binding call (the allreduce) per rank, at minimum.
        assert!(merged.counter("bind.calls") >= 4);
        // Open MPI's profile is flat: no two-level algorithm fires.
        assert_eq!(merged.counter("coll.allreduce.algo.two_level"), 0);
        let flat = merged.counter("coll.allreduce.algo.ring")
            + merged.counter("coll.allreduce.algo.recursive_doubling")
            + merged.counter("coll.allreduce.algo.rabenseifner");
        assert_eq!(flat, 4, "each rank counts its flat allreduce once");
    }
}
