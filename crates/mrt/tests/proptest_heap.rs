//! Property tests for the managed heap: arbitrary allocate / free /
//! write / collect interleavings must never corrupt live objects, and
//! direct buffers must be unaffected by the collector.

use mrt::{MrtError, Runtime};
use proptest::prelude::*;
use vtime::{Clock, CostModel};

#[derive(Debug, Clone)]
enum Op {
    /// Allocate an array of this many i32 elements (bounded).
    Alloc(usize),
    /// Free the live array at (index % live count).
    Free(usize),
    /// Overwrite the live array at index with a seeded pattern.
    Write(usize, i32),
    /// Force a collection.
    Gc,
    /// Allocate-and-free churn to trigger organic collections.
    Churn(usize),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1usize..64).prop_map(Op::Alloc),
        any::<usize>().prop_map(Op::Free),
        (any::<usize>(), any::<i32>()).prop_map(|(i, v)| Op::Write(i, v)),
        Just(Op::Gc),
        (1usize..256).prop_map(Op::Churn),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn live_arrays_survive_arbitrary_heap_activity(ops in proptest::collection::vec(arb_op(), 1..60)) {
        let mut rt = Runtime::with_heap(CostModel::default(), 1 << 12, 1 << 16);
        let mut clock = Clock::new();
        // (array, expected contents)
        let mut live: Vec<(mrt::JArray<i32>, Vec<i32>)> = Vec::new();

        for op in ops {
            match op {
                Op::Alloc(n) => {
                    match rt.alloc_array::<i32>(n, &mut clock) {
                        Ok(arr) => live.push((arr, vec![0; n])),
                        Err(MrtError::OutOfMemory { .. }) => {} // legal under churn
                        Err(e) => prop_assert!(false, "unexpected alloc error {e}"),
                    }
                }
                Op::Free(i) => {
                    if !live.is_empty() {
                        let (arr, _) = live.remove(i % live.len());
                        rt.release_array(arr).unwrap();
                    }
                }
                Op::Write(i, v) => {
                    if !live.is_empty() {
                        let idx = i % live.len();
                        let (arr, expect) = &mut live[idx];
                        let vals: Vec<i32> = (0..expect.len()).map(|k| v.wrapping_add(k as i32)).collect();
                        if !vals.is_empty() {
                            rt.array_write(*arr, 0, &vals, &mut clock).unwrap();
                            expect.copy_from_slice(&vals);
                        }
                    }
                }
                Op::Gc => rt.gc(&mut clock),
                Op::Churn(n) => {
                    if let Ok(junk) = rt.alloc_array::<i8>(n, &mut clock) {
                        rt.release_array(junk).unwrap();
                    }
                }
            }
            // Invariant: every live array holds exactly what we wrote.
            for (arr, expect) in &live {
                let mut got = vec![0i32; expect.len()];
                if !got.is_empty() {
                    rt.array_read(*arr, 0, &mut got, &mut clock).unwrap();
                }
                prop_assert_eq!(&got, expect);
            }
        }
    }

    #[test]
    fn direct_buffers_are_immune_to_gc(
        writes in proptest::collection::vec((0usize..128, any::<u8>()), 1..32),
        churn_rounds in 1usize..8,
    ) {
        let mut rt = Runtime::with_heap(CostModel::default(), 1 << 12, 1 << 15);
        let mut clock = Clock::new();
        let buf = rt.allocate_direct(128, &mut clock);
        let mut expect = [0u8; 128];
        for &(idx, v) in &writes {
            rt.direct_put::<i8>(buf, idx, v as i8, &mut clock).unwrap();
            expect[idx] = v;
        }
        for _ in 0..churn_rounds {
            if let Ok(junk) = rt.alloc_array::<i64>(256, &mut clock) {
                rt.release_array(junk).unwrap();
            }
            rt.gc(&mut clock);
        }
        for i in 0..128 {
            prop_assert_eq!(rt.direct_get::<i8>(buf, i, &mut clock).unwrap() as u8, expect[i]);
        }
    }

    #[test]
    fn clock_is_monotone_under_all_operations(ops in proptest::collection::vec(arb_op(), 1..40)) {
        let mut rt = Runtime::with_heap(CostModel::default(), 1 << 12, 1 << 16);
        let mut clock = Clock::new();
        let mut last = clock.now();
        let mut live = Vec::new();
        for op in ops {
            match op {
                Op::Alloc(n) => {
                    if let Ok(a) = rt.alloc_array::<i32>(n, &mut clock) {
                        live.push(a);
                    }
                }
                Op::Free(i) if !live.is_empty() => {
                    let a = live.remove(i % live.len());
                    rt.release_array(a).unwrap();
                }
                Op::Write(i, v) if !live.is_empty() => {
                    let idx = i % live.len();
                    let arr = live[idx];
                    if !arr.is_empty() {
                        rt.array_set(arr, 0, v, &mut clock).unwrap();
                    }
                }
                Op::Gc => rt.gc(&mut clock),
                Op::Churn(n) => {
                    if let Ok(j) = rt.alloc_array::<i8>(n, &mut clock) {
                        rt.release_array(j).unwrap();
                    }
                }
                _ => {}
            }
            prop_assert!(clock.now() >= last, "virtual time must never go backwards");
            last = clock.now();
        }
    }
}
