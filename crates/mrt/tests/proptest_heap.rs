//! Randomized tests for the managed heap: arbitrary allocate / free /
//! write / collect interleavings must never corrupt live objects, and
//! direct buffers must be unaffected by the collector. Driven by a
//! deterministic LCG so every run replays the same interleavings.

use mrt::{MrtError, Runtime};
use vtime::{Clock, CostModel};

/// Knuth LCG.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Lcg(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() >> 33) as usize % n
    }
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below(hi - lo)
    }
}

#[derive(Debug, Clone)]
enum Op {
    /// Allocate an array of this many i32 elements (bounded).
    Alloc(usize),
    /// Free the live array at (index % live count).
    Free(usize),
    /// Overwrite the live array at index with a seeded pattern.
    Write(usize, i32),
    /// Force a collection.
    Gc,
    /// Allocate-and-free churn to trigger organic collections.
    Churn(usize),
}

fn gen_op(rng: &mut Lcg) -> Op {
    match rng.below(5) {
        0 => Op::Alloc(rng.range(1, 64)),
        1 => Op::Free(rng.below(1 << 30)),
        2 => Op::Write(rng.below(1 << 30), rng.next() as i32),
        3 => Op::Gc,
        _ => Op::Churn(rng.range(1, 256)),
    }
}

fn gen_ops(rng: &mut Lcg, max: usize) -> Vec<Op> {
    (0..rng.range(1, max)).map(|_| gen_op(rng)).collect()
}

#[test]
fn live_arrays_survive_arbitrary_heap_activity() {
    let mut rng = Lcg::new(11);
    for _case in 0..64 {
        let ops = gen_ops(&mut rng, 60);
        let mut rt = Runtime::with_heap(CostModel::default(), 1 << 12, 1 << 16);
        let mut clock = Clock::new();
        // (array, expected contents)
        let mut live: Vec<(mrt::JArray<i32>, Vec<i32>)> = Vec::new();

        for op in ops {
            match op {
                Op::Alloc(n) => match rt.alloc_array::<i32>(n, &mut clock) {
                    Ok(arr) => live.push((arr, vec![0; n])),
                    Err(MrtError::OutOfMemory { .. }) => {} // legal under churn
                    Err(e) => panic!("unexpected alloc error {e}"),
                },
                Op::Free(i) => {
                    if !live.is_empty() {
                        let (arr, _) = live.remove(i % live.len());
                        rt.release_array(arr).unwrap();
                    }
                }
                Op::Write(i, v) => {
                    if !live.is_empty() {
                        let idx = i % live.len();
                        let (arr, expect) = &mut live[idx];
                        let vals: Vec<i32> = (0..expect.len())
                            .map(|k| v.wrapping_add(k as i32))
                            .collect();
                        if !vals.is_empty() {
                            rt.array_write(*arr, 0, &vals, &mut clock).unwrap();
                            expect.copy_from_slice(&vals);
                        }
                    }
                }
                Op::Gc => rt.gc(&mut clock),
                Op::Churn(n) => {
                    if let Ok(junk) = rt.alloc_array::<i8>(n, &mut clock) {
                        rt.release_array(junk).unwrap();
                    }
                }
            }
            // Invariant: every live array holds exactly what we wrote.
            for (arr, expect) in &live {
                let mut got = vec![0i32; expect.len()];
                if !got.is_empty() {
                    rt.array_read(*arr, 0, &mut got, &mut clock).unwrap();
                }
                assert_eq!(&got, expect);
            }
        }
    }
}

#[test]
fn direct_buffers_are_immune_to_gc() {
    let mut rng = Lcg::new(12);
    for _case in 0..32 {
        let writes: Vec<(usize, u8)> = (0..rng.range(1, 32))
            .map(|_| (rng.below(128), rng.next() as u8))
            .collect();
        let churn_rounds = rng.range(1, 8);
        let mut rt = Runtime::with_heap(CostModel::default(), 1 << 12, 1 << 15);
        let mut clock = Clock::new();
        let buf = rt.allocate_direct(128, &mut clock);
        let mut expect = [0u8; 128];
        for &(idx, v) in &writes {
            rt.direct_put::<i8>(buf, idx, v as i8, &mut clock).unwrap();
            expect[idx] = v;
        }
        for _ in 0..churn_rounds {
            if let Ok(junk) = rt.alloc_array::<i64>(256, &mut clock) {
                rt.release_array(junk).unwrap();
            }
            rt.gc(&mut clock);
        }
        for i in 0..128 {
            assert_eq!(
                rt.direct_get::<i8>(buf, i, &mut clock).unwrap() as u8,
                expect[i]
            );
        }
    }
}

#[test]
fn clock_is_monotone_under_all_operations() {
    let mut rng = Lcg::new(13);
    for _case in 0..64 {
        let ops = gen_ops(&mut rng, 40);
        let mut rt = Runtime::with_heap(CostModel::default(), 1 << 12, 1 << 16);
        let mut clock = Clock::new();
        let mut last = clock.now();
        let mut live = Vec::new();
        for op in ops {
            match op {
                Op::Alloc(n) => {
                    if let Ok(a) = rt.alloc_array::<i32>(n, &mut clock) {
                        live.push(a);
                    }
                }
                Op::Free(i) if !live.is_empty() => {
                    let a = live.remove(i % live.len());
                    rt.release_array(a).unwrap();
                }
                Op::Write(i, v) if !live.is_empty() => {
                    let idx = i % live.len();
                    let arr = live[idx];
                    if !arr.is_empty() {
                        rt.array_set(arr, 0, v, &mut clock).unwrap();
                    }
                }
                Op::Gc => rt.gc(&mut clock),
                Op::Churn(n) => {
                    if let Ok(j) = rt.alloc_array::<i8>(n, &mut clock) {
                        rt.release_array(j).unwrap();
                    }
                }
                _ => {}
            }
            assert!(clock.now() >= last, "virtual time must never go backwards");
            last = clock.now();
        }
    }
}
