//! The managed heap: bump allocation with a compacting (moving) collector.
//!
//! This is the piece of the reproduction that restores meaning to the
//! paper's central design problem. On-heap objects are addressed through a
//! **handle table**; a collection slides live objects together, so the
//! *byte offset* of an object really changes across GCs — exactly why JNI
//! cannot hand out raw on-heap pointers without either copying
//! (`Get<Type>ArrayElements`) or disabling the GC
//! (`GetPrimitiveArrayCritical`), and why direct (off-heap) buffers are
//! attractive for communication.
//!
//! The collector is stop-the-world and charges a pause proportional to the
//! live set to the owning rank's virtual clock.

use vtime::{Clock, CostModel};

use crate::error::{MrtError, MrtResult};

/// Handle to a managed heap object. Stable across collections (the
/// *object* moves; the handle does not).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Handle(pub(crate) u32);

#[derive(Debug, Clone, Copy)]
struct Slot {
    offset: usize,
    len: usize,
    live: bool,
}

/// Collector statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GcStats {
    /// Completed collections.
    pub collections: u64,
    /// Live bytes evacuated over all collections.
    pub bytes_copied: u64,
    /// Times the heap grew.
    pub growths: u64,
}

/// The managed heap.
pub struct Heap {
    space: Vec<u8>,
    top: usize,
    max_capacity: usize,
    slots: Vec<Slot>,
    free_slots: Vec<u32>,
    /// Nesting depth of critical (GC-disabled) regions.
    critical_depth: u32,
    stats: GcStats,
}

impl Heap {
    /// Create a heap with `capacity` initial bytes, growable to
    /// `max_capacity` (-Xms/-Xmx).
    pub fn new(capacity: usize, max_capacity: usize) -> Self {
        assert!(capacity > 0 && max_capacity >= capacity);
        Heap {
            space: vec![0; capacity],
            top: 0,
            max_capacity,
            slots: Vec::new(),
            free_slots: Vec::new(),
            critical_depth: 0,
            stats: GcStats::default(),
        }
    }

    /// Bytes currently allocated to live objects.
    pub fn live_bytes(&self) -> usize {
        self.slots.iter().filter(|s| s.live).map(|s| s.len).sum()
    }

    /// Current capacity.
    pub fn capacity(&self) -> usize {
        self.space.len()
    }

    /// Collector statistics so far.
    pub fn stats(&self) -> GcStats {
        self.stats
    }

    /// Whether a critical region is active (GC disabled).
    pub fn gc_locked(&self) -> bool {
        self.critical_depth > 0
    }

    /// Enter a critical region (JNI `GetPrimitiveArrayCritical`).
    pub fn enter_critical(&mut self) {
        self.critical_depth += 1;
    }

    /// Leave a critical region.
    pub fn leave_critical(&mut self) {
        assert!(self.critical_depth > 0, "unbalanced critical region");
        self.critical_depth -= 1;
    }

    /// Allocate `len` zeroed bytes, running the collector and/or growing
    /// the heap if needed. Charges allocation (and any pause) to `clock`.
    pub fn alloc(&mut self, len: usize, clock: &mut Clock, cost: &CostModel) -> MrtResult<Handle> {
        if self.top + len > self.space.len() {
            if self.gc_locked() {
                return Err(MrtError::AllocationInCriticalRegion);
            }
            self.collect(clock, cost);
            while self.top + len > self.space.len() {
                if self.space.len() >= self.max_capacity {
                    return Err(MrtError::OutOfMemory {
                        requested: len,
                        heap_max: self.max_capacity,
                    });
                }
                let new_cap = (self.space.len() * 2).min(self.max_capacity);
                self.space.resize(new_cap, 0);
                self.stats.growths += 1;
            }
        }
        clock.charge(cost.heap_alloc(len));
        // Allocation pressure: how fast the mutator is filling the heap.
        obs::count("mrt.heap.allocs", 1);
        obs::count("mrt.heap.alloc_bytes", len as u64);
        let offset = self.top;
        self.top += len;
        self.space[offset..offset + len].fill(0);
        let slot = Slot {
            offset,
            len,
            live: true,
        };
        let idx = match self.free_slots.pop() {
            Some(i) => {
                self.slots[i as usize] = slot;
                i
            }
            None => {
                self.slots.push(slot);
                (self.slots.len() - 1) as u32
            }
        };
        Ok(Handle(idx))
    }

    /// Mark an object dead (it becomes reclaimable garbage at the next
    /// collection — the analogue of dropping the last reference).
    pub fn release(&mut self, h: Handle) -> MrtResult<()> {
        let slot = self
            .slots
            .get_mut(h.0 as usize)
            .ok_or(MrtError::BadHandle)?;
        if !slot.live {
            return Err(MrtError::BadHandle);
        }
        slot.live = false;
        self.free_slots.push(h.0);
        Ok(())
    }

    fn slot(&self, h: Handle) -> MrtResult<Slot> {
        let s = self.slots.get(h.0 as usize).ok_or(MrtError::BadHandle)?;
        if !s.live {
            return Err(MrtError::BadHandle);
        }
        Ok(*s)
    }

    /// Read-only view of the object's bytes.
    pub fn bytes(&self, h: Handle) -> MrtResult<&[u8]> {
        let s = self.slot(h)?;
        Ok(&self.space[s.offset..s.offset + s.len])
    }

    /// Mutable view of the object's bytes.
    pub fn bytes_mut(&mut self, h: Handle) -> MrtResult<&mut [u8]> {
        let s = self.slot(h)?;
        Ok(&mut self.space[s.offset..s.offset + s.len])
    }

    /// Object length in bytes.
    pub fn len_of(&self, h: Handle) -> MrtResult<usize> {
        Ok(self.slot(h)?.len)
    }

    /// The object's *current* address (heap offset). Changes when the
    /// collector moves the object — the reason JNI can't pin this.
    pub fn address_of(&self, h: Handle) -> MrtResult<usize> {
        Ok(self.slot(h)?.offset)
    }

    /// Run a stop-the-world compacting collection: slide live objects to
    /// the bottom of the heap in address order and reclaim everything
    /// else. Charges the pause to `clock`.
    pub fn collect(&mut self, clock: &mut Clock, cost: &CostModel) {
        assert!(!self.gc_locked(), "collection while GC is locked");
        // Live slot indices in current address order for stable sliding.
        let mut order: Vec<usize> = (0..self.slots.len())
            .filter(|&i| self.slots[i].live)
            .collect();
        order.sort_unstable_by_key(|&i| self.slots[i].offset);

        let mut new_top = 0usize;
        let mut copied = 0u64;
        for i in order {
            let Slot { offset, len, .. } = self.slots[i];
            if offset != new_top {
                self.space.copy_within(offset..offset + len, new_top);
                copied += len as u64;
            }
            self.slots[i].offset = new_top;
            new_top += len;
        }
        self.top = new_top;
        self.stats.collections += 1;
        self.stats.bytes_copied += copied;
        let pause_begin = clock.now();
        clock.charge(cost.gc_pause(new_top));
        obs::count("mrt.gc.collections", 1);
        obs::count("mrt.gc.bytes_copied", copied);
        obs::observe(
            "mrt.gc.pauses_ns",
            clock.now().saturating_since(pause_begin).as_nanos(),
        );
        if obs::tracing_enabled() {
            obs::span(
                "gc",
                "mrt",
                pause_begin,
                clock.now(),
                vec![
                    ("live_bytes", obs::ArgValue::U64(new_top as u64)),
                    ("copied", obs::ArgValue::U64(copied)),
                ],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Heap, Clock, CostModel) {
        (Heap::new(1024, 4096), Clock::new(), CostModel::default())
    }

    #[test]
    fn alloc_returns_zeroed_distinct_objects() {
        let (mut h, mut c, cost) = setup();
        let a = h.alloc(16, &mut c, &cost).unwrap();
        let b = h.alloc(16, &mut c, &cost).unwrap();
        assert_ne!(a, b);
        assert!(h.bytes(a).unwrap().iter().all(|&x| x == 0));
        h.bytes_mut(a).unwrap().fill(7);
        assert!(h.bytes(b).unwrap().iter().all(|&x| x == 0));
        assert_eq!(h.live_bytes(), 32);
    }

    #[test]
    fn release_then_access_fails() {
        let (mut h, mut c, cost) = setup();
        let a = h.alloc(8, &mut c, &cost).unwrap();
        h.release(a).unwrap();
        assert_eq!(h.bytes(a).unwrap_err(), MrtError::BadHandle);
        assert_eq!(h.release(a).unwrap_err(), MrtError::BadHandle);
    }

    #[test]
    fn gc_compacts_and_moves_objects() {
        let (mut h, mut c, cost) = setup();
        let a = h.alloc(100, &mut c, &cost).unwrap();
        let b = h.alloc(100, &mut c, &cost).unwrap();
        h.bytes_mut(b).unwrap().fill(0xAB);
        let addr_before = h.address_of(b).unwrap();
        h.release(a).unwrap();
        h.collect(&mut c, &cost);
        let addr_after = h.address_of(b).unwrap();
        assert_ne!(addr_before, addr_after, "survivor must slide down");
        assert_eq!(addr_after, 0);
        // Contents preserved across the move.
        assert!(h.bytes(b).unwrap().iter().all(|&x| x == 0xAB));
        assert_eq!(h.stats().collections, 1);
        assert!(h.stats().bytes_copied >= 100);
    }

    #[test]
    fn gc_pause_advances_clock() {
        let (mut h, mut c, cost) = setup();
        let _ = h.alloc(100, &mut c, &cost).unwrap();
        let before = c.now();
        h.collect(&mut c, &cost);
        assert!(c.now() > before);
    }

    #[test]
    fn allocation_pressure_triggers_gc_and_reuses_space() {
        let (mut h, mut c, cost) = setup();
        // Churn: allocate/release far more than capacity.
        for _ in 0..100 {
            let x = h.alloc(512, &mut c, &cost).unwrap();
            h.release(x).unwrap();
        }
        assert!(h.stats().collections > 0, "GC must have run");
        assert!(h.capacity() <= 4096);
    }

    #[test]
    fn heap_grows_up_to_max_then_oom() {
        let (mut h, mut c, cost) = setup();
        let mut held = Vec::new();
        // Keep everything live: forces growth, then OOM.
        let mut oom = None;
        for _ in 0..100 {
            match h.alloc(512, &mut c, &cost) {
                Ok(x) => held.push(x),
                Err(e) => {
                    oom = Some(e);
                    break;
                }
            }
        }
        assert!(matches!(oom, Some(MrtError::OutOfMemory { .. })));
        assert_eq!(h.capacity(), 4096);
        assert!(h.stats().growths >= 2);
    }

    #[test]
    fn critical_region_blocks_gc_triggering_allocation() {
        let (mut h, mut c, cost) = setup();
        let live = h.alloc(900, &mut c, &cost).unwrap();
        h.enter_critical();
        // This allocation needs a GC (or growth), which is forbidden.
        let err = h.alloc(900, &mut c, &cost).unwrap_err();
        assert_eq!(err, MrtError::AllocationInCriticalRegion);
        h.leave_critical();
        // After leaving, the same allocation succeeds (grows/collects).
        let _ok = h.alloc(900, &mut c, &cost).unwrap();
        let _ = live;
    }

    #[test]
    fn small_allocation_inside_critical_ok_if_no_gc_needed() {
        let (mut h, mut c, cost) = setup();
        h.enter_critical();
        let a = h.alloc(8, &mut c, &cost).unwrap();
        h.leave_critical();
        assert_eq!(h.len_of(a).unwrap(), 8);
    }

    #[test]
    #[should_panic(expected = "unbalanced critical region")]
    fn unbalanced_critical_panics() {
        let (mut h, _, _) = setup();
        h.leave_critical();
    }

    #[test]
    fn handles_survive_many_collections() {
        let (mut h, mut c, cost) = setup();
        let keep = h.alloc(64, &mut c, &cost).unwrap();
        for i in 0..64 {
            h.bytes_mut(keep).unwrap()[i] = i as u8;
        }
        for _ in 0..10 {
            let junk = h.alloc(256, &mut c, &cost).unwrap();
            h.release(junk).unwrap();
            h.collect(&mut c, &cost);
        }
        let data = h.bytes(keep).unwrap();
        for i in 0..64 {
            assert_eq!(data[i], i as u8);
        }
    }
}
