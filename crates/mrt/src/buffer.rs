//! ByteBuffers: direct (off-heap, address-stable) and heap (on-heap,
//! movable) — the two NIO buffer kinds the paper's API distinguishes.
//!
//! Direct buffers live in a separate native region whose allocations
//! never move, so the JNI-analog boundary can hand out their storage
//! without copying or disabling the GC. They are deliberately costly to
//! create (`MemCosts::direct_alloc_fixed_ns`) — the reason the buffering
//! layer pools them.

use crate::error::{MrtError, MrtResult};
use crate::heap::Handle;
use crate::prim::ByteOrder;

/// Handle to a direct (off-heap) ByteBuffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DirectBuffer {
    pub(crate) id: u32,
    pub(crate) capacity: usize,
}

impl DirectBuffer {
    /// Capacity in bytes.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Stable identity of the off-heap region (direct buffers never move,
    /// so the id works as a registration-cache key).
    #[inline]
    pub fn id(&self) -> u32 {
        self.id
    }
}

/// Handle to a heap (non-direct) ByteBuffer — an ordinary managed object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HeapBuffer {
    pub(crate) handle: Handle,
    pub(crate) capacity: usize,
    pub(crate) order: ByteOrder,
}

impl HeapBuffer {
    /// Capacity in bytes.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The underlying heap handle.
    #[inline]
    pub fn handle(&self) -> Handle {
        self.handle
    }
}

#[derive(Debug)]
pub(crate) struct DirectBuf {
    pub data: Box<[u8]>,
    pub order: ByteOrder,
}

/// The native (off-heap) memory region backing direct buffers.
#[derive(Default)]
pub(crate) struct DirectRegion {
    bufs: Vec<Option<DirectBuf>>,
    free: Vec<u32>,
    pub allocated_bytes: usize,
    pub total_allocations: u64,
}

impl DirectRegion {
    pub fn allocate(&mut self, capacity: usize, order: ByteOrder) -> DirectBuffer {
        let buf = DirectBuf {
            data: vec![0u8; capacity].into_boxed_slice(),
            order,
        };
        self.allocated_bytes += capacity;
        self.total_allocations += 1;
        let id = match self.free.pop() {
            Some(i) => {
                self.bufs[i as usize] = Some(buf);
                i
            }
            None => {
                self.bufs.push(Some(buf));
                (self.bufs.len() - 1) as u32
            }
        };
        DirectBuffer { id, capacity }
    }

    pub fn free(&mut self, b: DirectBuffer) -> MrtResult<()> {
        let slot = self
            .bufs
            .get_mut(b.id as usize)
            .ok_or(MrtError::UseAfterFree)?;
        if slot.take().is_none() {
            return Err(MrtError::UseAfterFree);
        }
        self.allocated_bytes -= b.capacity;
        self.free.push(b.id);
        Ok(())
    }

    pub fn get(&self, b: DirectBuffer) -> MrtResult<&DirectBuf> {
        self.bufs
            .get(b.id as usize)
            .and_then(|s| s.as_ref())
            .ok_or(MrtError::UseAfterFree)
    }

    pub fn get_mut(&mut self, b: DirectBuffer) -> MrtResult<&mut DirectBuf> {
        self.bufs
            .get_mut(b.id as usize)
            .and_then(|s| s.as_mut())
            .ok_or(MrtError::UseAfterFree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_use_free() {
        let mut r = DirectRegion::default();
        let b = r.allocate(64, ByteOrder::Little);
        assert_eq!(b.capacity(), 64);
        assert_eq!(r.allocated_bytes, 64);
        r.get_mut(b).unwrap().data[0] = 42;
        assert_eq!(r.get(b).unwrap().data[0], 42);
        r.free(b).unwrap();
        assert_eq!(r.allocated_bytes, 0);
        assert_eq!(r.get(b).unwrap_err(), MrtError::UseAfterFree);
        assert_eq!(r.free(b).unwrap_err(), MrtError::UseAfterFree);
    }

    #[test]
    fn ids_are_recycled_but_slots_reset() {
        let mut r = DirectRegion::default();
        let a = r.allocate(16, ByteOrder::Little);
        r.get_mut(a).unwrap().data.fill(9);
        r.free(a).unwrap();
        let b = r.allocate(16, ByteOrder::Little);
        assert_eq!(a.id, b.id, "slot is recycled");
        assert!(
            r.get(b).unwrap().data.iter().all(|&x| x == 0),
            "fresh zeroed storage"
        );
        assert_eq!(r.total_allocations, 2);
    }
}
