//! Managed-runtime error conditions.

use std::fmt;

/// Errors raised by the managed runtime (the analogues of JVM exceptions
/// and JNI misuse).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MrtError {
    /// Heap exhausted even after collection and growth
    /// (java.lang.OutOfMemoryError).
    OutOfMemory { requested: usize, heap_max: usize },
    /// Allocation attempted while a `GetPrimitiveArrayCritical` region is
    /// active (illegal JNI use: the GC is disabled).
    AllocationInCriticalRegion,
    /// Stale or foreign handle.
    BadHandle,
    /// Array or buffer index out of bounds
    /// (ArrayIndexOutOfBoundsException / IndexOutOfBoundsException).
    IndexOutOfBounds { index: usize, length: usize },
    /// Bulk operation would overrun the destination
    /// (BufferOverflowException / BufferUnderflowException).
    BufferOverflow { needed: usize, available: usize },
    /// Type confusion on a handle (wrong primitive view).
    TypeMismatch {
        expected: &'static str,
        actual: &'static str,
    },
    /// Direct buffer already freed.
    UseAfterFree,
}

impl fmt::Display for MrtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MrtError::OutOfMemory {
                requested,
                heap_max,
            } => write!(
                f,
                "OutOfMemoryError: {requested} bytes requested, max heap {heap_max}"
            ),
            MrtError::AllocationInCriticalRegion => {
                write!(f, "allocation inside a critical region (GC disabled)")
            }
            MrtError::BadHandle => write!(f, "invalid managed handle"),
            MrtError::IndexOutOfBounds { index, length } => {
                write!(f, "index {index} out of bounds for length {length}")
            }
            MrtError::BufferOverflow { needed, available } => {
                write!(f, "buffer overflow: needed {needed}, available {available}")
            }
            MrtError::TypeMismatch { expected, actual } => {
                write!(f, "type mismatch: expected {expected}, found {actual}")
            }
            MrtError::UseAfterFree => write!(f, "direct buffer used after free"),
        }
    }
}

impl std::error::Error for MrtError {}

/// Result alias for runtime operations.
pub type MrtResult<T> = Result<T, MrtError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_details() {
        let e = MrtError::IndexOutOfBounds {
            index: 9,
            length: 4,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));
        let o = MrtError::OutOfMemory {
            requested: 100,
            heap_max: 50,
        };
        assert!(o.to_string().contains("OutOfMemoryError"));
    }
}
