//! The Java primitive types as Rust types, with explicit byte-order
//! encoding (ByteBuffers in Java default to big-endian; the JVM and the
//! wire use the platform's little-endian order).

/// Tag identifying a Java primitive type at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrimType {
    /// `byte`.
    Byte,
    /// `boolean` (one byte in array form).
    Boolean,
    /// `char` (UTF-16 code unit).
    Char,
    /// `short`.
    Short,
    /// `int`.
    Int,
    /// `long`.
    Long,
    /// `float`.
    Float,
    /// `double`.
    Double,
}

impl PrimType {
    /// Element size in bytes.
    pub const fn size(self) -> usize {
        match self {
            PrimType::Byte | PrimType::Boolean => 1,
            PrimType::Char | PrimType::Short => 2,
            PrimType::Int | PrimType::Float => 4,
            PrimType::Long | PrimType::Double => 8,
        }
    }

    /// Java name, for diagnostics.
    pub const fn name(self) -> &'static str {
        match self {
            PrimType::Byte => "byte",
            PrimType::Boolean => "boolean",
            PrimType::Char => "char",
            PrimType::Short => "short",
            PrimType::Int => "int",
            PrimType::Long => "long",
            PrimType::Float => "float",
            PrimType::Double => "double",
        }
    }
}

/// Byte order of a buffer view (java.nio.ByteOrder).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ByteOrder {
    /// Network order — the `ByteBuffer` default in Java.
    Big,
    /// The simulated platform's native order.
    #[default]
    Little,
}

/// A Java primitive type usable in managed arrays and buffer views.
pub trait Prim: Copy + PartialEq + std::fmt::Debug + Default + Send + 'static {
    /// Runtime type tag.
    const TYPE: PrimType;
    /// Element size in bytes.
    const SIZE: usize;
    /// Encode into `out[..SIZE]` with the given byte order.
    fn encode(self, out: &mut [u8], order: ByteOrder);
    /// Decode from `b[..SIZE]` with the given byte order.
    fn decode(b: &[u8], order: ByteOrder) -> Self;
}

macro_rules! impl_prim {
    ($ty:ty, $tag:expr) => {
        impl Prim for $ty {
            const TYPE: PrimType = $tag;
            const SIZE: usize = std::mem::size_of::<$ty>();
            #[inline]
            fn encode(self, out: &mut [u8], order: ByteOrder) {
                let bytes = match order {
                    ByteOrder::Little => self.to_le_bytes(),
                    ByteOrder::Big => self.to_be_bytes(),
                };
                out[..Self::SIZE].copy_from_slice(&bytes);
            }
            #[inline]
            fn decode(b: &[u8], order: ByteOrder) -> Self {
                let arr = b[..Self::SIZE].try_into().expect("decode slice too short");
                match order {
                    ByteOrder::Little => <$ty>::from_le_bytes(arr),
                    ByteOrder::Big => <$ty>::from_be_bytes(arr),
                }
            }
        }
    };
}

impl_prim!(i8, PrimType::Byte);
impl_prim!(u16, PrimType::Char);
impl_prim!(i16, PrimType::Short);
impl_prim!(i32, PrimType::Int);
impl_prim!(i64, PrimType::Long);
impl_prim!(f32, PrimType::Float);
impl_prim!(f64, PrimType::Double);

impl Prim for bool {
    const TYPE: PrimType = PrimType::Boolean;
    const SIZE: usize = 1;
    #[inline]
    fn encode(self, out: &mut [u8], _order: ByteOrder) {
        out[0] = self as u8;
    }
    #[inline]
    fn decode(b: &[u8], _order: ByteOrder) -> Self {
        b[0] != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_java() {
        assert_eq!(PrimType::Byte.size(), 1);
        assert_eq!(PrimType::Boolean.size(), 1);
        assert_eq!(PrimType::Char.size(), 2);
        assert_eq!(PrimType::Short.size(), 2);
        assert_eq!(PrimType::Int.size(), 4);
        assert_eq!(PrimType::Float.size(), 4);
        assert_eq!(PrimType::Long.size(), 8);
        assert_eq!(PrimType::Double.size(), 8);
        assert_eq!(<i32 as Prim>::SIZE, 4);
    }

    #[test]
    fn little_endian_roundtrip() {
        let mut buf = [0u8; 8];
        0x1122_3344i32.encode(&mut buf, ByteOrder::Little);
        assert_eq!(&buf[..4], &[0x44, 0x33, 0x22, 0x11]);
        assert_eq!(i32::decode(&buf, ByteOrder::Little), 0x1122_3344);
    }

    #[test]
    fn big_endian_roundtrip() {
        let mut buf = [0u8; 8];
        0x1122_3344i32.encode(&mut buf, ByteOrder::Big);
        assert_eq!(&buf[..4], &[0x11, 0x22, 0x33, 0x44]);
        assert_eq!(i32::decode(&buf, ByteOrder::Big), 0x1122_3344);
    }

    #[test]
    fn float_and_double_roundtrip_both_orders() {
        for order in [ByteOrder::Little, ByteOrder::Big] {
            let mut buf = [0u8; 8];
            1.5f32.encode(&mut buf, order);
            assert_eq!(f32::decode(&buf, order), 1.5);
            (-2.25f64).encode(&mut buf, order);
            assert_eq!(f64::decode(&buf, order), -2.25);
        }
    }

    #[test]
    fn bool_and_char_roundtrip() {
        let mut buf = [0u8; 2];
        true.encode(&mut buf, ByteOrder::Little);
        assert!(bool::decode(&buf, ByteOrder::Big));
        0x2603u16.encode(&mut buf, ByteOrder::Big);
        assert_eq!(u16::decode(&buf, ByteOrder::Big), 0x2603);
    }

    #[test]
    fn default_order_is_little() {
        assert_eq!(ByteOrder::default(), ByteOrder::Little);
    }
}
