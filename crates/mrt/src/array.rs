//! Managed primitive arrays: typed, bounds-checked views over heap
//! objects (the analogue of Java's `int[]`, `double[]`, …).
//!
//! An [`JArray<T>`] is a typed handle; element accesses go through the
//! runtime so the per-element cost (`MemCosts::array_elem_rw_ns`) and GC
//! interactions are modelled. Elements are stored in the platform's
//! little-endian order, as a JVM would store them natively.

use std::marker::PhantomData;

use crate::heap::Handle;
use crate::prim::{ByteOrder, Prim, PrimType};

/// Typed handle to a managed primitive array.
///
/// Copyable like a Java reference; the referent lives in the managed heap
/// and is reclaimed when [`crate::Runtime::release_array`] drops the last
/// conceptual reference (explicit in this simulation).
#[derive(Debug, PartialEq, Eq, Hash)]
pub struct JArray<T: Prim> {
    pub(crate) handle: Handle,
    pub(crate) len: usize,
    pub(crate) _ty: PhantomData<fn() -> T>,
}

// Manual impls: derive would bound T: Clone/Copy unnecessarily.
impl<T: Prim> Clone for JArray<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: Prim> Copy for JArray<T> {}

impl<T: Prim> JArray<T> {
    pub(crate) fn new(handle: Handle, len: usize) -> Self {
        JArray {
            handle,
            len,
            _ty: PhantomData,
        }
    }

    /// Element count (`arr.length`).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the array has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Size in bytes of the backing storage.
    #[inline]
    pub fn byte_len(&self) -> usize {
        self.len * T::SIZE
    }

    /// The element type tag.
    #[inline]
    pub fn prim_type(&self) -> PrimType {
        T::TYPE
    }

    /// The underlying heap handle (for the JNI-analog layer).
    #[inline]
    pub fn handle(&self) -> Handle {
        self.handle
    }
}

/// Encode a Rust slice of primitives into LE bytes (helper shared by the
/// runtime and the JNI-analog boundary).
pub(crate) fn encode_slice<T: Prim>(src: &[T], out: &mut [u8]) {
    debug_assert!(out.len() >= src.len() * T::SIZE);
    for (i, &v) in src.iter().enumerate() {
        v.encode(&mut out[i * T::SIZE..], ByteOrder::Little);
    }
}

/// Decode LE bytes into a Rust slice of primitives.
pub(crate) fn decode_slice<T: Prim>(src: &[u8], out: &mut [T]) {
    debug_assert!(src.len() >= out.len() * T::SIZE);
    for (i, v) in out.iter_mut().enumerate() {
        *v = T::decode(&src[i * T::SIZE..], ByteOrder::Little);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_metadata() {
        let a: JArray<i32> = JArray::new(crate::heap::Handle(7), 10);
        assert_eq!(a.len(), 10);
        assert_eq!(a.byte_len(), 40);
        assert_eq!(a.prim_type(), PrimType::Int);
        assert!(!a.is_empty());
        let b = a; // Copy
        assert_eq!(a, b);
    }

    #[test]
    fn slice_encode_decode_roundtrip() {
        let src = [1i64, -2, i64::MAX, i64::MIN];
        let mut bytes = vec![0u8; 32];
        encode_slice(&src, &mut bytes);
        let mut back = [0i64; 4];
        decode_slice(&bytes, &mut back);
        assert_eq!(src, back);
    }
}
