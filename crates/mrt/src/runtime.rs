//! The managed-runtime facade: one per simulated rank (its "JVM").
//!
//! Every operation that touches managed state takes the rank's virtual
//! [`Clock`] and charges the calibrated cost: per-element accesses for
//! array/buffer loops, bulk-copy costs for arraycopy-style transfers,
//! allocation costs, and GC pauses. The asymmetry between
//! `array_get/array_set` and `direct_get/direct_put` costs is what makes
//! the paper's Section VI-F (Figure 18) reproducible.

use vtime::{Clock, CostModel, VDur};

use crate::array::{decode_slice, encode_slice, JArray};
use crate::buffer::{DirectBuffer, DirectRegion, HeapBuffer};
use crate::error::{MrtError, MrtResult};
use crate::heap::{GcStats, Heap};
use crate::prim::{ByteOrder, Prim};

/// Default initial heap: 16 MiB.
pub const DEFAULT_HEAP: usize = 16 << 20;
/// Default max heap: 256 MiB.
pub const DEFAULT_MAX_HEAP: usize = 256 << 20;

/// A simulated JVM instance for one rank.
pub struct Runtime {
    heap: Heap,
    direct: DirectRegion,
    cost: CostModel,
}

impl Runtime {
    /// Runtime with default heap sizing.
    pub fn new(cost: CostModel) -> Self {
        Self::with_heap(cost, DEFAULT_HEAP, DEFAULT_MAX_HEAP)
    }

    /// Runtime with explicit `-Xms`/`-Xmx`.
    pub fn with_heap(cost: CostModel, initial: usize, max: usize) -> Self {
        Runtime {
            heap: Heap::new(initial, max),
            direct: DirectRegion::default(),
            cost,
        }
    }

    /// The cost model in force.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// The managed heap (JNI-analog boundary needs direct access).
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Mutable heap access (JNI-analog boundary).
    pub fn heap_mut(&mut self) -> &mut Heap {
        &mut self.heap
    }

    /// Force a collection (`System.gc()`).
    pub fn gc(&mut self, clock: &mut Clock) {
        self.heap.collect(clock, &self.cost);
    }

    /// Collector statistics.
    pub fn gc_stats(&self) -> GcStats {
        self.heap.stats()
    }

    /// Bytes currently allocated in the native (direct-buffer) region.
    pub fn direct_allocated_bytes(&self) -> usize {
        self.direct.allocated_bytes
    }

    /// Direct buffers ever created (pool-effectiveness metric).
    pub fn direct_allocations(&self) -> u64 {
        self.direct.total_allocations
    }

    /// Allocate an opaque managed object of `len` bytes (small wrapper
    /// objects, boxed values — the garbage ordinary Java code produces).
    pub fn alloc_object(
        &mut self,
        len: usize,
        clock: &mut Clock,
    ) -> MrtResult<crate::heap::Handle> {
        self.heap.alloc(len, clock, &self.cost)
    }

    /// Drop the last reference to an opaque object.
    pub fn release_object(&mut self, h: crate::heap::Handle) -> MrtResult<()> {
        self.heap.release(h)
    }

    // ------------------------------------------------------------------
    // Managed arrays
    // ------------------------------------------------------------------

    /// `new T[len]`.
    pub fn alloc_array<T: Prim>(&mut self, len: usize, clock: &mut Clock) -> MrtResult<JArray<T>> {
        let h = self.heap.alloc(len * T::SIZE, clock, &self.cost)?;
        Ok(JArray::new(h, len))
    }

    /// Drop the last reference to an array (it becomes garbage).
    pub fn release_array<T: Prim>(&mut self, arr: JArray<T>) -> MrtResult<()> {
        self.heap.release(arr.handle)
    }

    /// `arr[idx]` — one bounds-checked element load.
    pub fn array_get<T: Prim>(
        &self,
        arr: JArray<T>,
        idx: usize,
        clock: &mut Clock,
    ) -> MrtResult<T> {
        if idx >= arr.len {
            return Err(MrtError::IndexOutOfBounds {
                index: idx,
                length: arr.len,
            });
        }
        clock.charge(self.cost.array_loop(1));
        let bytes = self.heap.bytes(arr.handle)?;
        Ok(T::decode(&bytes[idx * T::SIZE..], ByteOrder::Little))
    }

    /// `arr[idx] = v` — one bounds-checked element store.
    pub fn array_set<T: Prim>(
        &mut self,
        arr: JArray<T>,
        idx: usize,
        v: T,
        clock: &mut Clock,
    ) -> MrtResult<()> {
        if idx >= arr.len {
            return Err(MrtError::IndexOutOfBounds {
                index: idx,
                length: arr.len,
            });
        }
        clock.charge(self.cost.array_loop(1));
        let bytes = self.heap.bytes_mut(arr.handle)?;
        v.encode(&mut bytes[idx * T::SIZE..], ByteOrder::Little);
        Ok(())
    }

    /// Bulk read (`System.arraycopy(arr, off, out, 0, out.len())`).
    pub fn array_read<T: Prim>(
        &self,
        arr: JArray<T>,
        off: usize,
        out: &mut [T],
        clock: &mut Clock,
    ) -> MrtResult<()> {
        let end = off
            .checked_add(out.len())
            .ok_or(MrtError::IndexOutOfBounds {
                index: usize::MAX,
                length: arr.len,
            })?;
        if end > arr.len {
            return Err(MrtError::IndexOutOfBounds {
                index: end,
                length: arr.len,
            });
        }
        clock.charge(self.cost.memcpy(out.len() * T::SIZE));
        let bytes = self.heap.bytes(arr.handle)?;
        decode_slice(&bytes[off * T::SIZE..], out);
        Ok(())
    }

    /// Bulk write (`System.arraycopy(src, 0, arr, off, src.len())`).
    pub fn array_write<T: Prim>(
        &mut self,
        arr: JArray<T>,
        off: usize,
        src: &[T],
        clock: &mut Clock,
    ) -> MrtResult<()> {
        let end = off
            .checked_add(src.len())
            .ok_or(MrtError::IndexOutOfBounds {
                index: usize::MAX,
                length: arr.len,
            })?;
        if end > arr.len {
            return Err(MrtError::IndexOutOfBounds {
                index: end,
                length: arr.len,
            });
        }
        clock.charge(self.cost.memcpy(src.len() * T::SIZE));
        let bytes = self.heap.bytes_mut(arr.handle)?;
        encode_slice(src, &mut bytes[off * T::SIZE..]);
        Ok(())
    }

    /// Run a tight "Java loop" of `n` array element accesses without
    /// materializing each one — used by benchmarks to populate/validate
    /// with the correct virtual cost but O(1) simulation work when the
    /// payload bytes are produced separately.
    pub fn charge_array_loop(&self, n: usize, clock: &mut Clock) {
        clock.charge(self.cost.array_loop(n));
    }

    /// Same for a direct-ByteBuffer access loop.
    pub fn charge_direct_loop(&self, n: usize, clock: &mut Clock) {
        clock.charge(self.cost.direct_bb_loop(n));
    }

    // ------------------------------------------------------------------
    // Direct ByteBuffers
    // ------------------------------------------------------------------

    /// `ByteBuffer.allocateDirect(capacity)` (native byte order, as HPC
    /// codes configure it).
    pub fn allocate_direct(&mut self, capacity: usize, clock: &mut Clock) -> DirectBuffer {
        clock.charge(self.cost.direct_alloc(capacity));
        self.direct.allocate(capacity, ByteOrder::Little)
    }

    /// Free a direct buffer (Cleaner-style explicit deallocation).
    pub fn free_direct(&mut self, b: DirectBuffer, clock: &mut Clock) -> MrtResult<()> {
        clock.charge(VDur::from_nanos(self.cost.mem.direct_free_fixed_ns));
        self.direct.free(b)
    }

    /// Change the buffer's byte order (`buf.order(...)`).
    pub fn direct_set_order(&mut self, b: DirectBuffer, order: ByteOrder) -> MrtResult<()> {
        self.direct.get_mut(b)?.order = order;
        Ok(())
    }

    /// The buffer's byte order.
    pub fn direct_order(&self, b: DirectBuffer) -> MrtResult<ByteOrder> {
        Ok(self.direct.get(b)?.order)
    }

    /// Absolute typed get (`buf.getInt(byteIndex)` etc.).
    pub fn direct_get<T: Prim>(
        &self,
        b: DirectBuffer,
        byte_idx: usize,
        clock: &mut Clock,
    ) -> MrtResult<T> {
        let buf = self.direct.get(b)?;
        if byte_idx + T::SIZE > buf.data.len() {
            return Err(MrtError::IndexOutOfBounds {
                index: byte_idx,
                length: buf.data.len(),
            });
        }
        clock.charge(self.cost.direct_bb_loop(1));
        Ok(T::decode(&buf.data[byte_idx..], buf.order))
    }

    /// Absolute typed put (`buf.putInt(byteIndex, v)` etc.).
    pub fn direct_put<T: Prim>(
        &mut self,
        b: DirectBuffer,
        byte_idx: usize,
        v: T,
        clock: &mut Clock,
    ) -> MrtResult<()> {
        clock.charge(self.cost.direct_bb_loop(1));
        let buf = self.direct.get_mut(b)?;
        if byte_idx + T::SIZE > buf.data.len() {
            return Err(MrtError::IndexOutOfBounds {
                index: byte_idx,
                length: buf.data.len(),
            });
        }
        let order = buf.order;
        v.encode(&mut buf.data[byte_idx..], order);
        Ok(())
    }

    /// Bulk byte write (`buf.put(byte[])` — an intrinsified copy).
    pub fn direct_write_bytes(
        &mut self,
        b: DirectBuffer,
        off: usize,
        src: &[u8],
        clock: &mut Clock,
    ) -> MrtResult<()> {
        clock.charge(self.cost.memcpy(src.len()));
        let buf = self.direct.get_mut(b)?;
        if off + src.len() > buf.data.len() {
            return Err(MrtError::BufferOverflow {
                needed: off + src.len(),
                available: buf.data.len(),
            });
        }
        buf.data[off..off + src.len()].copy_from_slice(src);
        Ok(())
    }

    /// Bulk byte read.
    pub fn direct_read_bytes(
        &self,
        b: DirectBuffer,
        off: usize,
        out: &mut [u8],
        clock: &mut Clock,
    ) -> MrtResult<()> {
        clock.charge(self.cost.memcpy(out.len()));
        let buf = self.direct.get(b)?;
        if off + out.len() > buf.data.len() {
            return Err(MrtError::BufferOverflow {
                needed: off + out.len(),
                available: buf.data.len(),
            });
        }
        out.copy_from_slice(&buf.data[off..off + out.len()]);
        Ok(())
    }

    /// Copy a managed array region into a direct buffer — the buffering
    /// layer's staging copy (bulk, arraycopy-class cost).
    pub fn direct_write_from_array<T: Prim>(
        &mut self,
        b: DirectBuffer,
        byte_off: usize,
        arr: JArray<T>,
        elem_off: usize,
        elems: usize,
        clock: &mut Clock,
    ) -> MrtResult<()> {
        if elem_off + elems > arr.len {
            return Err(MrtError::IndexOutOfBounds {
                index: elem_off + elems,
                length: arr.len,
            });
        }
        let nbytes = elems * T::SIZE;
        clock.charge(self.cost.memcpy(nbytes));
        let src = self.heap.bytes(arr.handle)?[elem_off * T::SIZE..][..nbytes].to_vec();
        let buf = self.direct.get_mut(b)?;
        if byte_off + nbytes > buf.data.len() {
            return Err(MrtError::BufferOverflow {
                needed: byte_off + nbytes,
                available: buf.data.len(),
            });
        }
        buf.data[byte_off..byte_off + nbytes].copy_from_slice(&src);
        Ok(())
    }

    /// Copy a direct-buffer region into a managed array — the buffering
    /// layer's unstaging copy.
    pub fn direct_read_into_array<T: Prim>(
        &mut self,
        b: DirectBuffer,
        byte_off: usize,
        arr: JArray<T>,
        elem_off: usize,
        elems: usize,
        clock: &mut Clock,
    ) -> MrtResult<()> {
        if elem_off + elems > arr.len {
            return Err(MrtError::IndexOutOfBounds {
                index: elem_off + elems,
                length: arr.len,
            });
        }
        let nbytes = elems * T::SIZE;
        clock.charge(self.cost.memcpy(nbytes));
        let src = {
            let buf = self.direct.get(b)?;
            if byte_off + nbytes > buf.data.len() {
                return Err(MrtError::BufferOverflow {
                    needed: byte_off + nbytes,
                    available: buf.data.len(),
                });
            }
            buf.data[byte_off..byte_off + nbytes].to_vec()
        };
        let dst = self.heap.bytes_mut(arr.handle)?;
        dst[elem_off * T::SIZE..][..nbytes].copy_from_slice(&src);
        Ok(())
    }

    /// Raw storage access — only the JNI-analog boundary should use this
    /// (it models `GetDirectBufferAddress` + pointer dereference, which
    /// carries no Java-side cost).
    pub fn direct_bytes(&self, b: DirectBuffer) -> MrtResult<&[u8]> {
        Ok(&self.direct.get(b)?.data)
    }

    /// Raw mutable storage access (see [`Runtime::direct_bytes`]).
    pub fn direct_bytes_mut(&mut self, b: DirectBuffer) -> MrtResult<&mut [u8]> {
        Ok(&mut self.direct.get_mut(b)?.data)
    }

    // ------------------------------------------------------------------
    // Heap ByteBuffers
    // ------------------------------------------------------------------

    /// `ByteBuffer.allocate(capacity)` — an ordinary managed object,
    /// movable by the collector.
    pub fn allocate_heap_buffer(
        &mut self,
        capacity: usize,
        clock: &mut Clock,
    ) -> MrtResult<HeapBuffer> {
        let h = self.heap.alloc(capacity, clock, &self.cost)?;
        Ok(HeapBuffer {
            handle: h,
            capacity,
            order: ByteOrder::Big, // Java's heap-buffer default
        })
    }

    /// Release a heap buffer.
    pub fn release_heap_buffer(&mut self, b: HeapBuffer) -> MrtResult<()> {
        self.heap.release(b.handle)
    }

    /// Absolute typed get on a heap buffer.
    pub fn heap_get<T: Prim>(
        &self,
        b: HeapBuffer,
        byte_idx: usize,
        clock: &mut Clock,
    ) -> MrtResult<T> {
        let bytes = self.heap.bytes(b.handle)?;
        if byte_idx + T::SIZE > bytes.len() {
            return Err(MrtError::IndexOutOfBounds {
                index: byte_idx,
                length: bytes.len(),
            });
        }
        clock.charge(self.cost.heap_bb_loop(1));
        Ok(T::decode(&bytes[byte_idx..], b.order))
    }

    /// Absolute typed put on a heap buffer.
    pub fn heap_put<T: Prim>(
        &mut self,
        b: HeapBuffer,
        byte_idx: usize,
        v: T,
        clock: &mut Clock,
    ) -> MrtResult<()> {
        clock.charge(self.cost.heap_bb_loop(1));
        let bytes = self.heap.bytes_mut(b.handle)?;
        if byte_idx + T::SIZE > bytes.len() {
            return Err(MrtError::IndexOutOfBounds {
                index: byte_idx,
                length: bytes.len(),
            });
        }
        v.encode(&mut bytes[byte_idx..], b.order);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Runtime, Clock) {
        (
            Runtime::with_heap(CostModel::default(), 1 << 16, 1 << 20),
            Clock::new(),
        )
    }

    #[test]
    fn array_get_set_roundtrip_and_bounds() {
        let (mut rt, mut c) = setup();
        let a = rt.alloc_array::<i32>(4, &mut c).unwrap();
        rt.array_set(a, 2, -7, &mut c).unwrap();
        assert_eq!(rt.array_get(a, 2, &mut c).unwrap(), -7);
        assert_eq!(rt.array_get(a, 0, &mut c).unwrap(), 0);
        assert!(matches!(
            rt.array_get(a, 4, &mut c),
            Err(MrtError::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            rt.array_set(a, 4, 1, &mut c),
            Err(MrtError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn array_bulk_roundtrip() {
        let (mut rt, mut c) = setup();
        let a = rt.alloc_array::<f64>(8, &mut c).unwrap();
        let src = [1.0, 2.5, -3.25, 4.0];
        rt.array_write(a, 2, &src, &mut c).unwrap();
        let mut out = [0.0; 4];
        rt.array_read(a, 2, &mut out, &mut c).unwrap();
        assert_eq!(src, out);
        let mut too_big = [0.0; 8];
        assert!(rt.array_read(a, 2, &mut too_big, &mut c).is_err());
    }

    #[test]
    fn element_access_costs_differ_by_kind() {
        // The Figure-18 invariant at the runtime level.
        let (mut rt, mut c) = setup();
        let a = rt.alloc_array::<i64>(1000, &mut c).unwrap();
        let d = rt.allocate_direct(8000, &mut c);
        let t0 = c.now();
        for i in 0..1000 {
            rt.array_set(a, i, i as i64, &mut c).unwrap();
        }
        let t_arr = c.now() - t0;
        let t1 = c.now();
        for i in 0..1000 {
            rt.direct_put(d, i * 8, i as i64, &mut c).unwrap();
        }
        let t_bb = c.now() - t1;
        assert!(
            t_bb.as_nanos() > 2.0 * t_arr.as_nanos(),
            "direct-BB loop must be clearly slower: {t_bb:?} vs {t_arr:?}"
        );
    }

    #[test]
    fn direct_buffer_roundtrip_and_order() {
        let (mut rt, mut c) = setup();
        let b = rt.allocate_direct(16, &mut c);
        rt.direct_put(b, 0, 0x0102_0304i32, &mut c).unwrap();
        assert_eq!(rt.direct_get::<i32>(b, 0, &mut c).unwrap(), 0x0102_0304);
        // Raw storage is little-endian by default.
        assert_eq!(rt.direct_bytes(b).unwrap()[0], 0x04);
        rt.direct_set_order(b, ByteOrder::Big).unwrap();
        rt.direct_put(b, 4, 0x0102_0304i32, &mut c).unwrap();
        assert_eq!(rt.direct_bytes(b).unwrap()[4], 0x01);
        assert_eq!(rt.direct_get::<i32>(b, 4, &mut c).unwrap(), 0x0102_0304);
    }

    #[test]
    fn direct_buffer_use_after_free() {
        let (mut rt, mut c) = setup();
        let b = rt.allocate_direct(8, &mut c);
        rt.free_direct(b, &mut c).unwrap();
        assert_eq!(
            rt.direct_get::<i32>(b, 0, &mut c).unwrap_err(),
            MrtError::UseAfterFree
        );
    }

    #[test]
    fn staging_copies_between_array_and_direct() {
        let (mut rt, mut c) = setup();
        let a = rt.alloc_array::<i32>(6, &mut c).unwrap();
        for i in 0..6 {
            rt.array_set(a, i, 10 + i as i32, &mut c).unwrap();
        }
        let d = rt.allocate_direct(16, &mut c);
        // Stage the middle 4 elements (subset support!).
        rt.direct_write_from_array(d, 0, a, 1, 4, &mut c).unwrap();
        assert_eq!(rt.direct_get::<i32>(d, 0, &mut c).unwrap(), 11);
        assert_eq!(rt.direct_get::<i32>(d, 12, &mut c).unwrap(), 14);
        // Unstage into a different position.
        let b2 = rt.alloc_array::<i32>(6, &mut c).unwrap();
        rt.direct_read_into_array(d, 0, b2, 2, 4, &mut c).unwrap();
        assert_eq!(rt.array_get(b2, 2, &mut c).unwrap(), 11);
        assert_eq!(rt.array_get(b2, 5, &mut c).unwrap(), 14);
        assert_eq!(rt.array_get(b2, 0, &mut c).unwrap(), 0);
    }

    #[test]
    fn arrays_survive_gc_direct_buffers_unaffected() {
        let (mut rt, mut c) = setup();
        let a = rt.alloc_array::<i32>(64, &mut c).unwrap();
        for i in 0..64 {
            rt.array_set(a, i, i as i32 * 3, &mut c).unwrap();
        }
        let d = rt.allocate_direct(64, &mut c);
        rt.direct_put(d, 0, 0xDEADi32, &mut c).unwrap();
        // Create garbage ahead of `a` so compaction moves it.
        let junk = rt.alloc_array::<i64>(128, &mut c).unwrap();
        rt.release_array(junk).unwrap();
        let addr_before = rt.heap().address_of(a.handle()).unwrap();
        rt.gc(&mut c);
        // Note: `a` was allocated before junk, so it may not move; force
        // movement with a second layout.
        let junk2 = rt.alloc_array::<i64>(256, &mut c).unwrap();
        let b = rt.alloc_array::<i32>(8, &mut c).unwrap();
        rt.release_array(junk2).unwrap();
        let b_before = rt.heap().address_of(b.handle()).unwrap();
        rt.gc(&mut c);
        let b_after = rt.heap().address_of(b.handle()).unwrap();
        assert!(b_after < b_before, "object slides down over reclaimed junk");
        for i in 0..64 {
            assert_eq!(rt.array_get(a, i, &mut c).unwrap(), i as i32 * 3);
        }
        assert_eq!(rt.direct_get::<i32>(d, 0, &mut c).unwrap(), 0xDEAD);
        let _ = addr_before;
    }

    #[test]
    fn heap_buffer_defaults_to_big_endian() {
        let (mut rt, mut c) = setup();
        let b = rt.allocate_heap_buffer(8, &mut c).unwrap();
        rt.heap_put(b, 0, 0x0102_0304i32, &mut c).unwrap();
        assert_eq!(rt.heap().bytes(b.handle()).unwrap()[0], 0x01);
        assert_eq!(rt.heap_get::<i32>(b, 0, &mut c).unwrap(), 0x0102_0304);
    }

    #[test]
    fn direct_allocation_is_expensive() {
        let (mut rt, mut c) = setup();
        let t0 = c.now();
        let a = rt.alloc_array::<i8>(4096, &mut c).unwrap();
        let t_heap = c.now() - t0;
        let t1 = c.now();
        let _d = rt.allocate_direct(4096, &mut c);
        let t_direct = c.now() - t1;
        assert!(t_direct.as_nanos() > 5.0 * t_heap.as_nanos());
        let _ = a;
    }

    #[test]
    fn charge_loops_advance_clock_linearly() {
        let (rt, mut c) = setup();
        let t0 = c.now();
        rt.charge_array_loop(1000, &mut c);
        let arr_cost = c.now() - t0;
        let t1 = c.now();
        rt.charge_direct_loop(1000, &mut c);
        let bb_cost = c.now() - t1;
        assert!(bb_cost > arr_cost);
    }
}
