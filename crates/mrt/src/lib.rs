//! `mrt` — the managed runtime ("JVM") simulation.
//!
//! The calibration note for this reproduction says a naive Rust port would
//! be meaningless because "no JVM heap/GC issues" exist in Rust. This
//! crate restores those issues deliberately:
//!
//! * a managed [`heap::Heap`] with **handle indirection and a compacting,
//!   moving collector** — on-heap object addresses genuinely change, so
//!   raw pointers across the native boundary genuinely go stale;
//! * typed primitive arrays ([`array::JArray`]) living on that heap;
//! * **direct ByteBuffers** ([`buffer::DirectBuffer`]) in a separate
//!   native region with stable storage — costly to create, never moved,
//!   ideal to hand to the native MPI library;
//! * heap (non-direct) ByteBuffers, movable like any managed object;
//! * a calibrated cost model (from the `vtime` crate) charged on every
//!   element access, bulk copy, allocation, and GC pause — including the
//!   crucial asymmetry that ByteBuffer element access is slower than
//!   array access (the paper's Section VI-F).

pub mod array;
pub mod buffer;
pub mod error;
pub mod heap;
pub mod prim;
pub mod runtime;

pub use array::JArray;
pub use buffer::{DirectBuffer, HeapBuffer};
pub use error::{MrtError, MrtResult};
pub use heap::{GcStats, Handle, Heap};
pub use prim::{ByteOrder, Prim, PrimType};
pub use runtime::Runtime;
