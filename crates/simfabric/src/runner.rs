//! The cluster runner: spawn one thread per rank, wire up mailboxes, run a
//! rank program, and collect per-rank results.

use std::sync::mpsc::channel;

use crate::endpoint::{Delivery, Endpoint};
use crate::event::{run_cluster_event, EngineMode};
use crate::topology::Topology;

/// Run a cluster under the selected engine: [`run_cluster`] for
/// [`EngineMode::Threaded`], [`run_cluster_event`] for
/// [`EngineMode::EventDriven`]. Both give the same contract (per-rank
/// results in rank order, panics propagate) and — because arrival times
/// are pure functions of per-link injection order — the same virtual
/// outcome, bit for bit.
pub fn run_cluster_on<M, R, F>(mode: EngineMode, topo: Topology, f: F) -> Vec<R>
where
    M: Send + 'static,
    R: Send,
    F: Fn(Endpoint<M>) -> R + Sync,
{
    match mode {
        EngineMode::Threaded => run_cluster(topo, f),
        EngineMode::EventDriven => run_cluster_event(topo, f),
    }
}

/// Run `f` once per rank, each on its own OS thread, with a fully wired
/// [`Endpoint`]. Returns the per-rank results in rank order.
///
/// Panics in any rank propagate out of `run_cluster` (the whole simulated
/// job aborts, like a real MPI job with an uncaught error).
///
/// `M` is the library-defined message payload; `R` the per-rank result.
pub fn run_cluster<M, R, F>(topo: Topology, f: F) -> Vec<R>
where
    M: Send + 'static,
    R: Send,
    F: Fn(Endpoint<M>) -> R + Sync,
{
    let n = topo.size();
    let mut txs = Vec::with_capacity(n);
    let mut rxs = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = channel::<Delivery<M>>();
        txs.push(tx);
        rxs.push(rx);
    }

    let mut endpoints: Vec<Endpoint<M>> = rxs
        .into_iter()
        .enumerate()
        .map(|(rank, rx)| Endpoint::new(rank, topo, txs.clone(), rx))
        .collect();
    // The runner keeps no sender handles: each endpoint holds clones, so
    // mailboxes stay open exactly as long as some rank might still send.
    drop(txs);

    let f = &f;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for ep in endpoints.drain(..) {
            handles.push(scope.spawn(move || f(ep)));
        }
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtime::{LogGp, VTime};

    fn params() -> LogGp {
        LogGp {
            latency_ns: 1000.0,
            o_send_ns: 100.0,
            o_recv_ns: 100.0,
            gap_msg_ns: 0.0,
            gap_per_byte_ns: 0.1,
        }
    }

    #[test]
    fn ring_passes_a_token_around() {
        let topo = Topology::new(2, 4); // 8 ranks
        let results = run_cluster::<u64, u64, _>(topo, |mut ep| {
            let n = ep.size();
            let rank = ep.rank();
            let next = (rank + 1) % n;
            if rank == 0 {
                ep.send(next, VTime::ZERO, 8, &params(), 1).unwrap();
                let d = ep.recv_blocking();
                d.msg
            } else {
                let d = ep.recv_blocking();
                ep.send(next, d.arrival, 8, &params(), d.msg + 1).unwrap();
                d.msg
            }
        });
        // Rank 0 receives the token after it was incremented by ranks 1..7.
        assert_eq!(results[0], 8);
        for (r, v) in results.iter().enumerate().skip(1) {
            assert_eq!(*v, r as u64);
        }
    }

    #[test]
    fn virtual_time_accumulates_over_hops() {
        // Token ring timing: each hop adds serialization + latency.
        let topo = Topology::new(4, 1);
        let arrivals = run_cluster::<(), VTime, _>(topo, |mut ep| {
            let n = ep.size();
            let rank = ep.rank();
            let next = (rank + 1) % n;
            if rank == 0 {
                ep.send(next, VTime::ZERO, 0, &params(), ()).unwrap();
                ep.recv_blocking().arrival
            } else {
                let d = ep.recv_blocking();
                ep.send(next, d.arrival, 0, &params(), ()).unwrap();
                d.arrival
            }
        });
        // Hop cost = 0 gap + 0 bytes + L = 1000ns each.
        assert_eq!(arrivals[1].as_nanos(), 1000.0);
        assert_eq!(arrivals[2].as_nanos(), 2000.0);
        assert_eq!(arrivals[3].as_nanos(), 3000.0);
        assert_eq!(arrivals[0].as_nanos(), 4000.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            run_cluster::<u32, f64, _>(Topology::new(2, 2), |mut ep| {
                let rank = ep.rank();
                let n = ep.size();
                let mut t = VTime::ZERO;
                // All-to-all chatter with data-dependent timing.
                for dst in 0..n {
                    if dst != rank {
                        ep.send(dst, t, 64 * (rank + 1), &params(), rank as u32)
                            .unwrap();
                    }
                }
                for _ in 0..n - 1 {
                    let d = ep.recv_blocking();
                    t = t.max(d.arrival);
                }
                t.as_nanos()
            })
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "rank 2 failed")]
    fn rank_panic_propagates() {
        run_cluster::<(), (), _>(Topology::new(4, 1), |ep| {
            if ep.rank() == 2 {
                panic!("rank 2 failed");
            }
        });
    }

    #[test]
    fn results_are_in_rank_order() {
        let r = run_cluster::<(), usize, _>(Topology::new(2, 3), |ep| ep.rank());
        assert_eq!(r, vec![0, 1, 2, 3, 4, 5]);
    }
}
