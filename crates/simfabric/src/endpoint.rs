//! Per-rank fabric endpoints.
//!
//! An [`Endpoint`] is the one object through which a simulated rank talks
//! to the cluster: it owns the rank's injection ports (sender-side
//! serialization state), the sender handles to every other rank's mailbox,
//! and its own mailbox receiver. Endpoints are created by
//! [`crate::run_cluster`] and moved into the rank's thread; they are not
//! `Sync` and never shared.

use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use vtime::{LinkState, LogGp, VTime};

use crate::topology::Topology;

/// A message delivered through the fabric, stamped with its (virtual)
/// arrival time at the destination NIC.
#[derive(Debug, Clone)]
pub struct Delivery<M> {
    /// Sending rank.
    pub src: usize,
    /// Virtual arrival instant at the destination (before `o_recv`).
    pub arrival: VTime,
    /// Library-defined payload.
    pub msg: M,
}

/// Counters describing what an endpoint has injected so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SendStats {
    /// Messages injected.
    pub messages: u64,
    /// Sum of the wire sizes passed to [`Endpoint::send`].
    pub wire_bytes: u64,
}

/// One rank's attachment point to the fabric.
pub struct Endpoint<M> {
    rank: usize,
    topo: Topology,
    /// Mailbox senders, indexed by destination rank.
    txs: Vec<Sender<Delivery<M>>>,
    /// This rank's mailbox.
    rx: Receiver<Delivery<M>>,
    /// Per-destination injection serialization. Keyed by (src, dst) pair —
    /// never shared across destinations — so arrival times are a pure
    /// function of the per-pair message sequence, which is FIFO. This is
    /// what makes the whole simulation deterministic even when a progress
    /// engine emits messages in real-time pop order.
    links: Vec<LinkState>,
    stats: SendStats,
}

impl<M> Endpoint<M> {
    pub(crate) fn new(
        rank: usize,
        topo: Topology,
        txs: Vec<Sender<Delivery<M>>>,
        rx: Receiver<Delivery<M>>,
    ) -> Self {
        let n = topo.size();
        Endpoint {
            rank,
            topo,
            txs,
            rx,
            links: (0..n).map(|_| LinkState::new()).collect(),
            stats: SendStats::default(),
        }
    }

    /// This endpoint's rank.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The cluster topology.
    #[inline]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Number of ranks in the cluster.
    #[inline]
    pub fn size(&self) -> usize {
        self.topo.size()
    }

    /// Whether `dst` shares this rank's node.
    #[inline]
    pub fn is_local(&self, dst: usize) -> bool {
        self.topo.same_node(self.rank, dst)
    }

    /// Inject a message towards `dst`.
    ///
    /// * `now` — the sender's clock *after* charging `o_send`;
    /// * `wire_bytes` — the size used for serialization timing (headers +
    ///   payload as the library chooses to model them);
    /// * `params` — the LogGP parameters of the path the library selected
    ///   (its shm path or its network path).
    ///
    /// Returns the virtual arrival instant at `dst`. Serialization state
    /// is per (src, dst) pair: back-to-back messages to one destination
    /// queue behind each other, while traffic to distinct destinations
    /// only serializes through the CPU-time charges of the layers above.
    pub fn send(
        &mut self,
        dst: usize,
        now: VTime,
        wire_bytes: usize,
        params: &LogGp,
        msg: M,
    ) -> VTime {
        assert!(
            dst < self.topo.size(),
            "destination rank {dst} out of range"
        );
        let arrival = self.links[dst].inject(now, wire_bytes, params);
        self.stats.messages += 1;
        self.stats.wire_bytes += wire_bytes as u64;
        self.txs[dst]
            .send(Delivery {
                src: self.rank,
                arrival,
                msg,
            })
            .expect("fabric mailbox closed: a rank thread exited early");
        arrival
    }

    /// Block until the next message is delivered to this rank's mailbox.
    ///
    /// Blocking here is *real* (thread parking) but carries no timing
    /// meaning: virtual time is read from the returned
    /// [`Delivery::arrival`].
    pub fn recv_blocking(&self) -> Delivery<M> {
        self.rx
            .recv()
            .expect("fabric mailbox closed: all sender handles dropped")
    }

    /// Non-blocking poll of the mailbox.
    pub fn try_recv(&self) -> Option<Delivery<M>> {
        match self.rx.try_recv() {
            Ok(d) => Some(d),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => {
                panic!("fabric mailbox closed: all sender handles dropped")
            }
        }
    }

    /// Injection counters.
    pub fn stats(&self) -> SendStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel as unbounded;
    use vtime::VDur;

    fn params() -> LogGp {
        LogGp {
            latency_ns: 1000.0,
            o_send_ns: 100.0,
            o_recv_ns: 100.0,
            gap_msg_ns: 50.0,
            gap_per_byte_ns: 0.1,
        }
    }

    /// Build a 2-rank, 2-node loop-back pair of endpoints for unit tests.
    fn pair(topo: Topology) -> (Endpoint<u32>, Endpoint<u32>) {
        let (t0, r0) = unbounded();
        let (t1, r1) = unbounded();
        let e0 = Endpoint::new(0, topo, vec![t0.clone(), t1.clone()], r0);
        let e1 = Endpoint::new(1, topo, vec![t0, t1], r1);
        (e0, e1)
    }

    #[test]
    fn send_delivers_with_arrival_time() {
        let (mut e0, e1) = pair(Topology::new(2, 1));
        let arr = e0.send(1, VTime::ZERO, 100, &params(), 7);
        let d = e1.recv_blocking();
        assert_eq!(d.src, 0);
        assert_eq!(d.msg, 7);
        assert_eq!(d.arrival, arr);
        // 50 + 100*0.1 + 1000 = 1060
        assert_eq!(arr.as_nanos(), 1060.0);
    }

    #[test]
    fn per_sender_fifo_is_preserved() {
        let (mut e0, e1) = pair(Topology::new(2, 1));
        for i in 0..64u32 {
            e0.send(1, VTime::ZERO, 1, &params(), i);
        }
        for i in 0..64u32 {
            assert_eq!(e1.recv_blocking().msg, i);
        }
    }

    #[test]
    fn shm_and_net_ports_do_not_serialize_against_each_other() {
        // 3 ranks: 0 and 1 on node 0, rank 2 on node 1.
        let topo = Topology::new(2, 2); // ranks 0,1 node0; 2,3 node1
        let (t0, _r0) = unbounded::<Delivery<u32>>();
        let (t1, r1) = unbounded();
        let (t2, r2) = unbounded();
        let (t3, _r3) = unbounded();
        let mut e0 = Endpoint::new(0, topo, vec![t0, t1, t2, t3], unbounded().1);
        let p = params();
        // Saturate the shm port with a large local message...
        let a_local = e0.send(1, VTime::ZERO, 1_000_000, &p, 1);
        // ...then a remote message at the same instant must NOT queue
        // behind it, because it leaves through the NIC port.
        let a_remote = e0.send(2, VTime::ZERO, 1, &p, 2);
        assert!(a_remote < a_local);
        assert_eq!(r1.recv().unwrap().msg, 1);
        assert_eq!(r2.recv().unwrap().msg, 2);
    }

    #[test]
    fn same_port_messages_serialize() {
        let (mut e0, _e1) = pair(Topology::new(2, 1));
        let p = params();
        let a1 = e0.send(1, VTime::ZERO, 10_000, &p, 1);
        let a2 = e0.send(1, VTime::ZERO, 10_000, &p, 2);
        let ser = p.serialize(10_000);
        assert_eq!((a2 - a1), ser);
    }

    #[test]
    fn stats_accumulate() {
        let (mut e0, _e1) = pair(Topology::new(2, 1));
        e0.send(1, VTime::ZERO, 10, &params(), 1);
        e0.send(1, VTime::ZERO, 20, &params(), 2);
        assert_eq!(
            e0.stats(),
            SendStats {
                messages: 2,
                wire_bytes: 30
            }
        );
    }

    #[test]
    fn try_recv_empty_then_some() {
        let (mut e0, e1) = pair(Topology::new(2, 1));
        assert!(e1.try_recv().is_none());
        e0.send(1, VTime::ZERO, 1, &params(), 9);
        // mpsc channels make the send visible immediately.
        let d = e1.try_recv().expect("message should be queued");
        assert_eq!(d.msg, 9);
    }

    #[test]
    fn self_send_is_allowed() {
        let topo = Topology::single_node(1);
        let (t0, r0) = unbounded();
        let mut e0 = Endpoint::<u32>::new(0, topo, vec![t0], r0);
        e0.send(0, VTime::ZERO, 8, &params(), 42);
        assert_eq!(e0.recv_blocking().msg, 42);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn send_out_of_range_panics() {
        let (mut e0, _e1) = pair(Topology::new(2, 1));
        e0.send(5, VTime::ZERO, 1, &params(), 0);
    }

    #[test]
    fn arrival_monotone_per_link_even_with_clock_skew() {
        // Even if the sender's clock jumps backwards between sends (it
        // cannot in practice, but the port must still be safe), arrivals
        // on one port never reorder.
        let (mut e0, _e1) = pair(Topology::new(2, 1));
        let p = params();
        let a1 = e0.send(1, VTime::from_nanos(5000.0), 100, &p, 1);
        let a2 = e0.send(1, VTime::from_nanos(0.0), 100, &p, 2);
        assert!(a2 >= a1);
        let _ = VDur::ZERO;
    }
}
