//! Per-rank fabric endpoints.
//!
//! An [`Endpoint`] is the one object through which a simulated rank talks
//! to the cluster: it owns the rank's injection ports (sender-side
//! serialization state), the sender handles to every other rank's mailbox,
//! and its own mailbox receiver. Endpoints are created by
//! [`crate::run_cluster`] and moved into the rank's thread; they are not
//! `Sync` and never shared.
//!
//! When a [`FaultPlan`] is installed the endpoint also decides the *fate*
//! of every injection (drop / corrupt / duplicate / jitter / crash
//! blackhole) at send time — see the `fault` module for why sender-side
//! oracle decisions are the only ones that stay deterministic.

use std::collections::HashMap;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;
use std::time::Duration;

use vtime::{LinkState, LogGp, VDur, VTime};

use crate::event::EventCore;
use crate::fault::{mix, unit, FabricError, Fate, FaultPlan, FaultTarget, SendOutcome};
use crate::topology::Topology;

/// A message delivered through the fabric, stamped with its (virtual)
/// arrival time at the destination NIC.
#[derive(Debug, Clone)]
pub struct Delivery<M> {
    /// Sending rank.
    pub src: usize,
    /// Virtual arrival instant at the destination (before `o_recv`).
    pub arrival: VTime,
    /// Library-defined payload.
    pub msg: M,
}

/// Counters describing what an endpoint has injected so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SendStats {
    /// Messages injected (duplicated copies count).
    pub messages: u64,
    /// Sum of the wire sizes passed to [`Endpoint::send`].
    pub wire_bytes: u64,
}

/// Per-destination fault state: the injection counter keying the fault
/// RNG, and the last (possibly jittered) arrival for the monotonicity
/// clamp.
#[derive(Debug, Clone, Copy, Default)]
struct FaultLink {
    injections: u64,
    last_arrival: VTime,
}

/// How deliveries move between ranks: real mpsc mailboxes under the
/// threaded engine, or the shared event queue under the event engine.
/// Injection timing (the `links` below) is identical either way — the
/// transport only decides *when a thread runs*, never *what time it is*.
enum Transport<M> {
    Threaded {
        /// Mailbox senders, indexed by destination rank.
        txs: Vec<Sender<Delivery<M>>>,
        /// This rank's mailbox.
        rx: Receiver<Delivery<M>>,
    },
    Event {
        core: Arc<EventCore<M>>,
    },
}

/// One rank's attachment point to the fabric.
pub struct Endpoint<M> {
    rank: usize,
    topo: Topology,
    transport: Transport<M>,
    /// Per-destination injection serialization. Keyed by (src, dst) pair —
    /// never shared across destinations — so arrival times are a pure
    /// function of the per-pair message sequence, which is FIFO. This is
    /// what makes the whole simulation deterministic even when a progress
    /// engine emits messages in real-time pop order.
    links: Vec<LinkState>,
    /// Additional injection channels, keyed by (dst, channel id). A
    /// channel models a dedicated send queue (e.g. the QP a hardware-
    /// offloaded non-blocking collective schedule owns): traffic on
    /// distinct channels does not serialize against channel 0 or against
    /// other channels. Layers above route any traffic whose *emission
    /// order* is driven by message arrival (rather than program order)
    /// onto its own channel, so every channel's injection sequence — and
    /// therefore every arrival time — stays deterministic.
    channels: HashMap<(usize, u64), LinkState>,
    /// Installed fault plan, if any.
    plan: Option<FaultPlan>,
    /// Per-destination fault RNG state (parallel to `links`).
    fault_links: Vec<FaultLink>,
    stats: SendStats,
}

impl<M> Endpoint<M> {
    pub(crate) fn new(
        rank: usize,
        topo: Topology,
        txs: Vec<Sender<Delivery<M>>>,
        rx: Receiver<Delivery<M>>,
    ) -> Self {
        Self::with_transport(rank, topo, Transport::Threaded { txs, rx })
    }

    /// An endpoint wired to an event-driven core instead of mailboxes.
    pub(crate) fn new_event(rank: usize, topo: Topology, core: Arc<EventCore<M>>) -> Self {
        Self::with_transport(rank, topo, Transport::Event { core })
    }

    fn with_transport(rank: usize, topo: Topology, transport: Transport<M>) -> Self {
        let n = topo.size();
        Endpoint {
            rank,
            topo,
            transport,
            links: (0..n).map(|_| LinkState::new()).collect(),
            channels: HashMap::new(),
            plan: None,
            fault_links: vec![FaultLink::default(); n],
            stats: SendStats::default(),
        }
    }

    /// This endpoint's rank.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The cluster topology.
    #[inline]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Number of ranks in the cluster.
    #[inline]
    pub fn size(&self) -> usize {
        self.topo.size()
    }

    /// Whether `dst` shares this rank's node.
    #[inline]
    pub fn is_local(&self, dst: usize) -> bool {
        self.topo.same_node(self.rank, dst)
    }

    /// Install a fault plan. Every subsequent [`Endpoint::send`] draws a
    /// fate from it. Call once, before any traffic, or the fault sequence
    /// will not be reproducible across runs.
    pub fn install_faults(&mut self, plan: FaultPlan) {
        self.plan = Some(plan);
        if let Transport::Event { core } = &self.transport {
            core.set_fault_mode();
        }
    }

    /// The installed fault plan, if any (layers above read reliability
    /// tuning — rto, retry cap, watchdog — from here).
    #[inline]
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.plan
    }

    /// Enqueue a delivery. A closed mailbox (threaded) or a finished
    /// rank (event engine) means the destination already exited: under
    /// a fault plan that is the crash model (the message silently
    /// disappears); without one it is a wiring bug. Under the event
    /// engine the delivery enters the shared event queue keyed by its
    /// arrival time; the threaded mpsc path ignores `arrival` because
    /// per-sender FIFO already carries the ordering.
    fn deliver(&self, dst: usize, arrival: VTime, msg: Delivery<M>) {
        let _ = arrival;
        match &self.transport {
            Transport::Threaded { txs, .. } => {
                if txs[dst].send(msg).is_err() && self.plan.is_none() {
                    panic!("fabric mailbox closed: a rank thread exited early");
                }
            }
            Transport::Event { core } => {
                core.push(dst, msg, self.plan.is_some());
            }
        }
    }

    /// Inject a message towards `dst`.
    ///
    /// * `now` — the sender's clock *after* charging `o_send`;
    /// * `wire_bytes` — the size used for serialization timing (headers +
    ///   payload as the library chooses to model them);
    /// * `params` — the LogGP parameters of the path the library selected
    ///   (its shm path or its network path).
    ///
    /// Returns the virtual arrival instant at `dst` and the message's
    /// fault fate ([`Fate::Delivered`] whenever no plan is installed), or
    /// a typed [`FabricError`] for an out-of-range destination.
    /// Serialization state is per (src, dst) pair: back-to-back messages
    /// to one destination queue behind each other, while traffic to
    /// distinct destinations only serializes through the CPU-time charges
    /// of the layers above.
    pub fn send(
        &mut self,
        dst: usize,
        now: VTime,
        wire_bytes: usize,
        params: &LogGp,
        msg: M,
    ) -> Result<SendOutcome, FabricError>
    where
        M: FaultTarget,
    {
        self.send_on(dst, 0, now, wire_bytes, params, msg)
    }

    /// [`Endpoint::send`] on a specific injection channel. Channel 0 is
    /// the default port; any other id names a dedicated send queue whose
    /// serialization horizon is independent of all other channels (see
    /// the `channels` field).
    pub fn send_on(
        &mut self,
        dst: usize,
        channel: u64,
        now: VTime,
        wire_bytes: usize,
        params: &LogGp,
        msg: M,
    ) -> Result<SendOutcome, FabricError>
    where
        M: FaultTarget,
    {
        if dst >= self.topo.size() {
            return Err(FabricError::DestinationOutOfRange {
                dst,
                size: self.topo.size(),
            });
        }
        let link = if channel == 0 {
            &mut self.links[dst]
        } else {
            self.channels.entry((dst, channel)).or_default()
        };
        let arrival = link.inject(now, wire_bytes, params);
        obs::wallprof::add(obs::wallprof::Counter::Injections, 1);
        obs::link_traffic(self.rank, dst, wire_bytes as u64);
        self.stats.messages += 1;
        self.stats.wire_bytes += wire_bytes as u64;

        let Some(plan) = self.plan else {
            self.deliver(
                dst,
                arrival,
                Delivery {
                    src: self.rank,
                    arrival,
                    msg,
                },
            );
            return Ok(SendOutcome {
                arrival,
                fate: Fate::Delivered,
            });
        };

        // One deterministic base draw per injection, keyed by the link
        // and its injection count; sub-decisions chain off it.
        let fl = &mut self.fault_links[dst];
        let base = mix(plan.seed
            ^ mix(((self.rank as u64) << 20) | dst as u64)
            ^ fl.injections.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        fl.injections += 1;
        let (r_drop, r_corrupt, r_dup, r_jitter) =
            (mix(base), mix(base ^ 1), mix(base ^ 2), mix(base ^ 3));

        // Delay shaping first: fixed per-link extra, then uniform jitter,
        // then the per-link monotonicity clamp (jitter models queueing,
        // not reordering — the engine above relies on per-link FIFO).
        let mut arrival = arrival;
        if let Some((s, d, extra)) = plan.link_delay {
            if s == self.rank && d == dst {
                arrival += VDur::from_nanos(extra);
            }
        }
        if plan.jitter_ns > 0.0 {
            arrival += VDur::from_nanos(unit(r_jitter) * plan.jitter_ns);
        }
        arrival = arrival.max(fl.last_arrival);
        let fl_last = &mut self.fault_links[dst].last_arrival;
        *fl_last = arrival;

        // Crash blackhole: the wire consumed the bytes; the dead NIC
        // dropped them.
        if let Some((crashed, at_ns)) = plan.crash {
            if dst == crashed && arrival.as_nanos() >= at_ns {
                return Ok(SendOutcome {
                    arrival,
                    fate: Fate::Dropped,
                });
            }
        }

        let drop_prob = match plan.link_drop {
            Some((s, d, p)) if s == self.rank && d == dst => p,
            _ => plan.drop_prob,
        };
        if unit(r_drop) < drop_prob {
            return Ok(SendOutcome {
                arrival,
                fate: Fate::Dropped,
            });
        }

        if unit(r_corrupt) < plan.corrupt_prob {
            let mut msg = msg;
            msg.corrupt(r_corrupt | 1);
            self.deliver(
                dst,
                arrival,
                Delivery {
                    src: self.rank,
                    arrival,
                    msg,
                },
            );
            return Ok(SendOutcome {
                arrival,
                fate: Fate::Corrupted,
            });
        }

        if unit(r_dup) < plan.duplicate_prob {
            self.deliver(
                dst,
                arrival,
                Delivery {
                    src: self.rank,
                    arrival,
                    msg: msg.clone(),
                },
            );
            // The duplicate consumes the link again, behind the original.
            let link = if channel == 0 {
                &mut self.links[dst]
            } else {
                self.channels.entry((dst, channel)).or_default()
            };
            let dup_arrival = link.inject(now, wire_bytes, params).max(arrival);
            self.fault_links[dst].last_arrival = dup_arrival;
            self.stats.messages += 1;
            self.stats.wire_bytes += wire_bytes as u64;
            self.deliver(
                dst,
                dup_arrival,
                Delivery {
                    src: self.rank,
                    arrival: dup_arrival,
                    msg,
                },
            );
            return Ok(SendOutcome {
                arrival,
                fate: Fate::Duplicated,
            });
        }

        self.deliver(
            dst,
            arrival,
            Delivery {
                src: self.rank,
                arrival,
                msg,
            },
        );
        Ok(SendOutcome {
            arrival,
            fate: Fate::Delivered,
        })
    }

    /// Deliver a control message out-of-band: at a caller-computed
    /// arrival instant, without occupying an injection port and without
    /// fault application. The reliability sublayer above uses this for
    /// positive acks, which a hardware RC transport generates at the NIC
    /// — they neither queue behind data traffic nor themselves fail.
    pub fn send_oob(&self, dst: usize, arrival: VTime, msg: M) {
        obs::wallprof::add(obs::wallprof::Counter::Injections, 1);
        self.deliver(
            dst,
            arrival,
            Delivery {
                src: self.rank,
                arrival,
                msg,
            },
        );
    }

    /// Block until the next message is delivered to this rank's mailbox.
    ///
    /// Under the threaded engine blocking is *real* (thread parking)
    /// but carries no timing meaning: virtual time is read from the
    /// returned [`Delivery::arrival`]. Under the event engine the rank
    /// parks its state machine and the scheduler releases the next
    /// queued frame.
    pub fn recv_blocking(&self) -> Delivery<M> {
        match &self.transport {
            Transport::Threaded { rx, .. } => rx
                .recv()
                .expect("fabric mailbox closed: all sender handles dropped"),
            Transport::Event { core } => core.recv_blocking(self.rank),
        }
    }

    /// Like [`Endpoint::recv_blocking`] but with a watchdog verdict:
    /// `None` means "no progress is coming". The threaded engine
    /// approximates that with `timeout` of *real* time (a disconnected
    /// mailbox — every peer exited — also returns `None`); the event
    /// engine proves it structurally (no runnable rank, no pending
    /// event) and ignores `timeout` entirely, so the watchdog fires at
    /// its virtual deadline with zero wall-clock waiting.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Delivery<M>> {
        match &self.transport {
            Transport::Threaded { rx, .. } => match rx.recv_timeout(timeout) {
                Ok(d) => Some(d),
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
            },
            Transport::Event { core } => core.recv_progress_or_stall(self.rank),
        }
    }

    /// Non-blocking poll of the mailbox. Under the event engine an
    /// empty poll yields the baton once (so poll loops drive cluster
    /// progress instead of spinning) before reporting `None`.
    pub fn try_recv(&self) -> Option<Delivery<M>> {
        match &self.transport {
            Transport::Threaded { rx, .. } => match rx.try_recv() {
                Ok(d) => Some(d),
                Err(TryRecvError::Empty) => None,
                Err(TryRecvError::Disconnected) => {
                    if self.plan.is_some() {
                        None
                    } else {
                        panic!("fabric mailbox closed: all sender handles dropped")
                    }
                }
            },
            Transport::Event { core } => core.try_recv(self.rank),
        }
    }

    /// Injection counters.
    pub fn stats(&self) -> SendStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel as unbounded;
    use vtime::VDur;

    fn params() -> LogGp {
        LogGp {
            latency_ns: 1000.0,
            o_send_ns: 100.0,
            o_recv_ns: 100.0,
            gap_msg_ns: 50.0,
            gap_per_byte_ns: 0.1,
        }
    }

    /// Build a 2-rank, 2-node loop-back pair of endpoints for unit tests.
    fn pair(topo: Topology) -> (Endpoint<u32>, Endpoint<u32>) {
        let (t0, r0) = unbounded();
        let (t1, r1) = unbounded();
        let e0 = Endpoint::new(0, topo, vec![t0.clone(), t1.clone()], r0);
        let e1 = Endpoint::new(1, topo, vec![t0, t1], r1);
        (e0, e1)
    }

    fn send_ok(
        e: &mut Endpoint<u32>,
        dst: usize,
        now: VTime,
        bytes: usize,
        p: &LogGp,
        msg: u32,
    ) -> VTime {
        e.send(dst, now, bytes, p, msg).unwrap().arrival
    }

    #[test]
    fn send_delivers_with_arrival_time() {
        let (mut e0, e1) = pair(Topology::new(2, 1));
        let arr = send_ok(&mut e0, 1, VTime::ZERO, 100, &params(), 7);
        let d = e1.recv_blocking();
        assert_eq!(d.src, 0);
        assert_eq!(d.msg, 7);
        assert_eq!(d.arrival, arr);
        // 50 + 100*0.1 + 1000 = 1060
        assert_eq!(arr.as_nanos(), 1060.0);
    }

    #[test]
    fn per_sender_fifo_is_preserved() {
        let (mut e0, e1) = pair(Topology::new(2, 1));
        for i in 0..64u32 {
            send_ok(&mut e0, 1, VTime::ZERO, 1, &params(), i);
        }
        for i in 0..64u32 {
            assert_eq!(e1.recv_blocking().msg, i);
        }
    }

    #[test]
    fn shm_and_net_ports_do_not_serialize_against_each_other() {
        // 3 ranks: 0 and 1 on node 0, rank 2 on node 1.
        let topo = Topology::new(2, 2); // ranks 0,1 node0; 2,3 node1
        let (t0, _r0) = unbounded::<Delivery<u32>>();
        let (t1, r1) = unbounded();
        let (t2, r2) = unbounded();
        let (t3, _r3) = unbounded();
        let mut e0 = Endpoint::new(0, topo, vec![t0, t1, t2, t3], unbounded().1);
        let p = params();
        // Saturate the shm port with a large local message...
        let a_local = send_ok(&mut e0, 1, VTime::ZERO, 1_000_000, &p, 1);
        // ...then a remote message at the same instant must NOT queue
        // behind it, because it leaves through the NIC port.
        let a_remote = send_ok(&mut e0, 2, VTime::ZERO, 1, &p, 2);
        assert!(a_remote < a_local);
        assert_eq!(r1.recv().unwrap().msg, 1);
        assert_eq!(r2.recv().unwrap().msg, 2);
    }

    #[test]
    fn same_port_messages_serialize() {
        let (mut e0, _e1) = pair(Topology::new(2, 1));
        let p = params();
        let a1 = send_ok(&mut e0, 1, VTime::ZERO, 10_000, &p, 1);
        let a2 = send_ok(&mut e0, 1, VTime::ZERO, 10_000, &p, 2);
        let ser = p.serialize(10_000);
        assert_eq!((a2 - a1), ser);
    }

    #[test]
    fn stats_accumulate() {
        let (mut e0, _e1) = pair(Topology::new(2, 1));
        send_ok(&mut e0, 1, VTime::ZERO, 10, &params(), 1);
        send_ok(&mut e0, 1, VTime::ZERO, 20, &params(), 2);
        assert_eq!(
            e0.stats(),
            SendStats {
                messages: 2,
                wire_bytes: 30
            }
        );
    }

    #[test]
    fn try_recv_empty_then_some() {
        let (mut e0, e1) = pair(Topology::new(2, 1));
        assert!(e1.try_recv().is_none());
        send_ok(&mut e0, 1, VTime::ZERO, 1, &params(), 9);
        // mpsc channels make the send visible immediately.
        let d = e1.try_recv().expect("message should be queued");
        assert_eq!(d.msg, 9);
    }

    #[test]
    fn self_send_is_allowed() {
        let topo = Topology::single_node(1);
        let (t0, r0) = unbounded();
        let mut e0 = Endpoint::<u32>::new(0, topo, vec![t0], r0);
        send_ok(&mut e0, 0, VTime::ZERO, 8, &params(), 42);
        assert_eq!(e0.recv_blocking().msg, 42);
    }

    #[test]
    fn send_out_of_range_is_typed_error() {
        let (mut e0, _e1) = pair(Topology::new(2, 1));
        let err = e0.send(5, VTime::ZERO, 1, &params(), 0).unwrap_err();
        assert_eq!(err, FabricError::DestinationOutOfRange { dst: 5, size: 2 });
        // Nothing was injected.
        assert_eq!(e0.stats(), SendStats::default());
    }

    #[test]
    fn arrival_monotone_per_link_even_with_clock_skew() {
        // Even if the sender's clock jumps backwards between sends (it
        // cannot in practice, but the port must still be safe), arrivals
        // on one port never reorder.
        let (mut e0, _e1) = pair(Topology::new(2, 1));
        let p = params();
        let a1 = send_ok(&mut e0, 1, VTime::from_nanos(5000.0), 100, &p, 1);
        let a2 = send_ok(&mut e0, 1, VTime::from_nanos(0.0), 100, &p, 2);
        assert!(a2 >= a1);
        let _ = VDur::ZERO;
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    /// A payload whose corruption is observable.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct Probe(u64);
    impl FaultTarget for Probe {
        fn corrupt(&mut self, salt: u64) {
            self.0 ^= salt | 1;
        }
    }

    fn faulty_pair(plan: FaultPlan) -> (Endpoint<Probe>, Endpoint<Probe>) {
        let (t0, r0) = unbounded();
        let (t1, r1) = unbounded();
        let topo = Topology::new(2, 1);
        let mut e0 = Endpoint::new(0, topo, vec![t0.clone(), t1.clone()], r0);
        let mut e1 = Endpoint::new(1, topo, vec![t0, t1], r1);
        e0.install_faults(plan);
        e1.install_faults(plan);
        (e0, e1)
    }

    #[test]
    fn drops_lose_messages_but_consume_wire_time() {
        let mut plan = FaultPlan::new(42);
        plan.drop_prob = 0.5;
        let (mut e0, e1) = faulty_pair(plan);
        let p = params();
        let mut fates = Vec::new();
        for i in 0..100 {
            let out = e0.send(1, VTime::ZERO, 100, &p, Probe(i)).unwrap();
            fates.push(out.fate);
        }
        let dropped = fates.iter().filter(|f| **f == Fate::Dropped).count();
        assert!((20..=80).contains(&dropped), "p=0.5 over 100: {dropped}");
        let mut got = 0;
        while e1.try_recv().is_some() {
            got += 1;
        }
        assert_eq!(got, 100 - dropped, "dropped copies never surface");
    }

    #[test]
    fn fates_are_deterministic_per_seed() {
        let fates = |seed: u64| -> Vec<Fate> {
            let mut plan = FaultPlan::new(seed);
            plan.drop_prob = 0.3;
            plan.corrupt_prob = 0.1;
            plan.duplicate_prob = 0.1;
            let (mut e0, _e1) = faulty_pair(plan);
            let p = params();
            (0..200)
                .map(|i| e0.send(1, VTime::ZERO, 64, &p, Probe(i)).unwrap().fate)
                .collect()
        };
        assert_eq!(fates(7), fates(7), "same seed, same fates");
        assert_ne!(fates(7), fates(8), "different seed, different fates");
    }

    #[test]
    fn corruption_mutates_payload_in_flight() {
        let mut plan = FaultPlan::new(3);
        plan.corrupt_prob = 1.0;
        let (mut e0, e1) = faulty_pair(plan);
        let out = e0.send(1, VTime::ZERO, 8, &params(), Probe(0)).unwrap();
        assert_eq!(out.fate, Fate::Corrupted);
        let d = e1.recv_blocking();
        assert_ne!(d.msg, Probe(0), "payload was flipped in flight");
    }

    #[test]
    fn duplication_delivers_twice_in_order() {
        let mut plan = FaultPlan::new(3);
        plan.duplicate_prob = 1.0;
        let (mut e0, e1) = faulty_pair(plan);
        let out = e0.send(1, VTime::ZERO, 8, &params(), Probe(9)).unwrap();
        assert_eq!(out.fate, Fate::Duplicated);
        let first = e1.recv_blocking();
        let second = e1.recv_blocking();
        assert_eq!(first.msg, Probe(9));
        assert_eq!(second.msg, Probe(9));
        assert!(second.arrival >= first.arrival);
    }

    #[test]
    fn jitter_preserves_per_link_order() {
        let mut plan = FaultPlan::new(11);
        plan.jitter_ns = 5_000.0;
        let (mut e0, e1) = faulty_pair(plan);
        let p = params();
        let mut last = VTime::ZERO;
        for i in 0..50 {
            let out = e0.send(1, VTime::ZERO, 16, &p, Probe(i)).unwrap();
            assert!(out.arrival >= last, "jitter must not reorder a link");
            last = out.arrival;
        }
        let mut prev = VTime::ZERO;
        while let Some(d) = e1.try_recv() {
            assert!(d.arrival >= prev);
            prev = d.arrival;
        }
    }

    #[test]
    fn link_delay_applies_to_one_link_only() {
        let mut plan = FaultPlan::new(0);
        plan.link_delay = Some((0, 1, 10_000.0));
        let (mut e0, _e1) = faulty_pair(plan);
        let p = params();
        let delayed = e0.send(1, VTime::ZERO, 100, &p, Probe(0)).unwrap().arrival;
        // Same message shape on the undelayed reverse direction.
        let (mut f1, _f0) = {
            let (a, b) = faulty_pair(plan);
            (b, a)
        };
        let plain = f1.send(0, VTime::ZERO, 100, &p, Probe(0)).unwrap().arrival;
        assert_eq!((delayed - plain).as_nanos(), 10_000.0);
    }

    #[test]
    fn crashed_destination_blackholes_after_crash_time() {
        let mut plan = FaultPlan::new(0);
        plan.crash = Some((1, 2_000.0));
        let (mut e0, e1) = faulty_pair(plan);
        let p = params();
        // Arrival ~1060ns < 2000ns: delivered.
        let before = e0.send(1, VTime::ZERO, 100, &p, Probe(1)).unwrap();
        assert_eq!(before.fate, Fate::Delivered);
        // Much later: blackholed.
        let after = e0
            .send(1, VTime::from_nanos(10_000.0), 100, &p, Probe(2))
            .unwrap();
        assert_eq!(after.fate, Fate::Dropped);
        assert_eq!(e1.recv_blocking().msg, Probe(1));
        assert!(e1.try_recv().is_none());
    }

    #[test]
    fn recv_timeout_times_out_on_silence() {
        let (_e0, e1) = pair(Topology::new(2, 1));
        assert!(e1.recv_timeout(Duration::from_millis(10)).is_none());
    }
}
