//! One-sided (RMA) delivery-channel naming.
//!
//! One-sided traffic bypasses tag matching and is emitted by two distinct
//! engines: the origin CPU (puts, accumulates, get requests, in program
//! order) and the target NIC (get replies, in request-arrival order).
//! Each gets its own injection channel per window so that, as with
//! non-blocking-collective schedule traffic, the per-channel busy horizon
//! stays a pure function of virtual time — never of the real-time order
//! in which the two emitters happened to run.
//!
//! Channel ids set the top bit, which the two-sided channel allocator
//! (`mpisim`'s `injection_channel`) can never produce: its ids are built
//! from a 32-bit context and a bounded tag window, leaving the high bit
//! clear. The two spaces are therefore disjoint by construction.

/// Marks a channel id as belonging to the one-sided space.
pub const ONE_SIDED_CHANNEL_BIT: u64 = 1 << 63;

/// Emission classes within one window's one-sided traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OneSidedClass {
    /// Origin-emitted traffic: puts, accumulates, get requests (fired in
    /// program order on the origin rank).
    Data = 0,
    /// Target-NIC-emitted get replies (fired in request-arrival order).
    Reply = 1,
}

/// The injection channel for one-sided traffic on window `win`.
pub fn one_sided_channel(win: u32, class: OneSidedClass) -> u64 {
    ONE_SIDED_CHANNEL_BIT | ((win as u64) << 1) | class as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channels_are_distinct_per_window_and_class() {
        let a = one_sided_channel(1, OneSidedClass::Data);
        let b = one_sided_channel(1, OneSidedClass::Reply);
        let c = one_sided_channel(2, OneSidedClass::Data);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn channels_set_the_high_bit() {
        for win in [0u32, 1, 7, u32::MAX] {
            for class in [OneSidedClass::Data, OneSidedClass::Reply] {
                assert_ne!(one_sided_channel(win, class) & ONE_SIDED_CHANNEL_BIT, 0);
            }
        }
    }
}
