//! Deterministic virtual-time cluster fabric.
//!
//! `simfabric` provides the physical substrate of the reproduction: a
//! cluster of `nodes × ppn` MPI ranks exchanging messages with
//! LogGP-timed arrivals, under one of two engines ([`EngineMode`]): the
//! *threaded* engine (one OS thread per rank, mpsc mailboxes, real
//! blocking) or the *event-driven* engine (a single-threaded
//! discrete-event loop releasing frames from a `(time, src, seq)` event
//! queue — see the `event` module), which lifts the rank ceiling into
//! the thousands. The fabric is *payload-generic* (`Endpoint<M>`): the
//! native MPI simulation (`mpisim`) defines what a message is; the
//! fabric defines when it arrives.
//!
//! ## Determinism
//!
//! All timing state is owned by exactly one thread:
//!
//! * each sender owns its own injection port ([`vtime::LinkState`]), so the
//!   arrival time of a message is a pure function of program order on the
//!   sending rank;
//! * receivers observe arrival *timestamps* carried in the message, never
//!   real time.
//!
//! Consequently any program whose receive operations name their source
//! rank (i.e. no wildcard-source receives) produces bit-identical virtual
//! times on every run, regardless of OS scheduling.

pub mod endpoint;
pub mod event;
pub mod fault;
pub mod onesided;
pub mod runner;
pub mod topology;

pub use endpoint::{Delivery, Endpoint, SendStats};
pub use event::{run_cluster_event, EngineMode, Event, EventQueue};
pub use fault::{FabricError, Fate, FaultPlan, FaultTarget, SendOutcome};
pub use onesided::{one_sided_channel, OneSidedClass};
pub use runner::{run_cluster, run_cluster_on};
pub use topology::Topology;
