//! Deterministic virtual-time cluster fabric.
//!
//! `simfabric` provides the physical substrate of the reproduction: a
//! cluster of `nodes × ppn` MPI ranks, each running as one OS thread,
//! exchanging messages through per-rank mailboxes with LogGP-timed
//! arrivals. The fabric is *payload-generic* (`Endpoint<M>`): the native
//! MPI simulation (`mpisim`) defines what a message is; the fabric defines
//! when it arrives.
//!
//! ## Determinism
//!
//! All timing state is owned by exactly one thread:
//!
//! * each sender owns its own injection port ([`vtime::LinkState`]), so the
//!   arrival time of a message is a pure function of program order on the
//!   sending rank;
//! * receivers observe arrival *timestamps* carried in the message, never
//!   real time.
//!
//! Consequently any program whose receive operations name their source
//! rank (i.e. no wildcard-source receives) produces bit-identical virtual
//! times on every run, regardless of OS scheduling.

pub mod endpoint;
pub mod fault;
pub mod onesided;
pub mod runner;
pub mod topology;

pub use endpoint::{Delivery, Endpoint, SendStats};
pub use fault::{FabricError, Fate, FaultPlan, FaultTarget, SendOutcome};
pub use onesided::{one_sided_channel, OneSidedClass};
pub use runner::run_cluster;
pub use topology::Topology;
