//! Seeded, deterministic fault injection for the fabric.
//!
//! A [`FaultPlan`] describes everything that may go wrong on the wire:
//! per-link message drops, byte corruption, duplication, delivery jitter,
//! a rank crashing at a virtual instant, and a rank running slow. The
//! plan is applied at [`crate::Endpoint::send`] delivery time, so the
//! *fate* of every injection is decided by the sender — an oracle model
//! that keeps the whole simulation deterministic: fates are a pure
//! function of `(seed, src, dst, nth-message-on-link)`, never of OS
//! scheduling.
//!
//! ## Determinism
//!
//! The fault RNG is keyed per *link* with a per-link injection counter,
//! for the same reason [`vtime::LinkState`] is per-link: the order of
//! injections on one (src, dst) pair is fixed by program order on the
//! sender, while the interleaving *across* links is a real-time accident.
//! A single per-endpoint RNG would leak that accident into the fault
//! sequence; a per-link counter cannot.

use std::fmt;

use vtime::VTime;

/// Errors surfaced by the fabric itself (as opposed to the MPI layers
/// above it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricError {
    /// `send` named a destination rank outside the topology.
    DestinationOutOfRange {
        /// The requested destination.
        dst: usize,
        /// Ranks in the cluster.
        size: usize,
    },
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::DestinationOutOfRange { dst, size } => {
                write!(
                    f,
                    "destination rank {dst} out of range for cluster of {size}"
                )
            }
        }
    }
}

impl std::error::Error for FabricError {}

/// What the fabric did with one injected message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// Delivered intact.
    Delivered,
    /// Consumed wire time, then lost (drop or crashed destination).
    Dropped,
    /// Delivered, but the payload was mutated in flight.
    Corrupted,
    /// Delivered intact twice.
    Duplicated,
}

/// Result of one [`crate::Endpoint::send`] under (possible) faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendOutcome {
    /// Virtual arrival instant of the (first) copy at the destination
    /// NIC. For [`Fate::Dropped`] this is when the copy *would have*
    /// arrived — the link time was consumed either way.
    pub arrival: VTime,
    /// What happened to the message.
    pub fate: Fate,
}

/// A payload the fabric is allowed to corrupt. The default is a no-op so
/// plain test payloads (`u32`, `()`, …) can ride the faulty fabric; real
/// protocol frames override it to flip actual bytes.
pub trait FaultTarget: Clone {
    /// Mutate the payload "in flight". `salt` is a deterministic random
    /// value; implementations should derive which bytes to flip from it.
    fn corrupt(&mut self, _salt: u64) {}
}

impl FaultTarget for () {}
impl FaultTarget for u8 {}
impl FaultTarget for u32 {}
impl FaultTarget for u64 {}

/// A seeded, deterministic description of everything that may go wrong.
///
/// `Copy` by design: the plan travels inside job-configuration structs
/// that are themselves `Copy`, so list-like knobs are modelled as single
/// optional entries (one crashed rank, one slow rank, one special link).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for every fault decision.
    pub seed: u64,
    /// Per-message drop probability on every link.
    pub drop_prob: f64,
    /// Per-message corruption probability.
    pub corrupt_prob: f64,
    /// Per-message duplication probability.
    pub duplicate_prob: f64,
    /// Uniform extra delivery delay in `[0, jitter_ns)` per message.
    pub jitter_ns: f64,
    /// Rank that crashes, and the virtual time (ns) it dies. Messages
    /// arriving at the crashed rank after that instant are blackholed.
    pub crash: Option<(usize, f64)>,
    /// Rank whose local work runs `factor`× slower (straggler model).
    pub slowdown: Option<(usize, f64)>,
    /// One (src, dst) link with a fixed extra delay in ns.
    pub link_delay: Option<(usize, usize, f64)>,
    /// One (src, dst) link whose drop probability overrides `drop_prob`.
    pub link_drop: Option<(usize, usize, f64)>,
    /// Reliability-sublayer retransmission timeout (virtual ns).
    pub rto_ns: f64,
    /// Retransmission attempts before the sender gives up.
    pub max_retries: u32,
    /// Real-time progress-watchdog bound (ms) used by layers above to
    /// convert a stall into a rank-failure error when `crash` is set.
    pub watchdog_ms: u64,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a parse/builder base).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_prob: 0.0,
            corrupt_prob: 0.0,
            duplicate_prob: 0.0,
            jitter_ns: 0.0,
            crash: None,
            slowdown: None,
            link_delay: None,
            link_drop: None,
            rto_ns: 20_000.0,
            max_retries: 12,
            watchdog_ms: 250,
        }
    }

    /// Whether the plan can actually perturb a run.
    pub fn is_active(&self) -> bool {
        self.drop_prob > 0.0
            || self.corrupt_prob > 0.0
            || self.duplicate_prob > 0.0
            || self.jitter_ns > 0.0
            || self.crash.is_some()
            || self.slowdown.is_some()
            || self.link_delay.is_some()
            || self.link_drop.is_some()
    }

    /// Parse a `--faults` specification: comma-separated `key=value`
    /// entries.
    ///
    /// ```text
    /// drop=0.02,corrupt=0.001,dup=0.01,jitter=200,crash=2@1000000,
    /// slow=1:2.0,delay=0-1:500,linkdrop=0-1:0.2,rto=20000,retries=12,
    /// watchdog=250
    /// ```
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new(0);
        for entry in spec.split(',').filter(|s| !s.is_empty()) {
            let (key, value) = entry
                .split_once('=')
                .ok_or_else(|| format!("fault entry `{entry}` is not key=value"))?;
            let prob = |v: &str, what: &str| -> Result<f64, String> {
                let p: f64 = v
                    .parse()
                    .map_err(|_| format!("{what} `{v}` is not a number"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("{what} `{v}` outside [0, 1]"));
                }
                Ok(p)
            };
            let num = |v: &str, what: &str| -> Result<f64, String> {
                let x: f64 = v
                    .parse()
                    .map_err(|_| format!("{what} `{v}` is not a number"))?;
                if !x.is_finite() || x < 0.0 {
                    return Err(format!("{what} `{v}` must be finite and non-negative"));
                }
                Ok(x)
            };
            fn link(v: &str) -> Result<(usize, usize, &str), String> {
                let (pair, rest) = v
                    .split_once(':')
                    .ok_or_else(|| format!("link entry `{v}` is not SRC-DST:VALUE"))?;
                let (s, d) = pair
                    .split_once('-')
                    .ok_or_else(|| format!("link pair `{pair}` is not SRC-DST"))?;
                let s = s.parse().map_err(|_| format!("bad src rank `{s}`"))?;
                let d = d.parse().map_err(|_| format!("bad dst rank `{d}`"))?;
                Ok((s, d, rest))
            }
            match key {
                "drop" => plan.drop_prob = prob(value, "drop probability")?,
                "corrupt" => plan.corrupt_prob = prob(value, "corruption probability")?,
                "dup" => plan.duplicate_prob = prob(value, "duplication probability")?,
                "jitter" => plan.jitter_ns = num(value, "jitter")?,
                "crash" => {
                    let (rank, at) = value
                        .split_once('@')
                        .ok_or_else(|| format!("crash `{value}` is not RANK@VTIME_NS"))?;
                    let rank = rank
                        .parse()
                        .map_err(|_| format!("bad crash rank `{rank}`"))?;
                    plan.crash = Some((rank, num(at, "crash time")?));
                }
                "slow" => {
                    let (rank, factor) = value
                        .split_once(':')
                        .ok_or_else(|| format!("slow `{value}` is not RANK:FACTOR"))?;
                    let rank = rank
                        .parse()
                        .map_err(|_| format!("bad slow rank `{rank}`"))?;
                    let factor = num(factor, "slowdown factor")?;
                    if factor < 1.0 {
                        return Err(format!("slowdown factor `{factor}` must be >= 1"));
                    }
                    plan.slowdown = Some((rank, factor));
                }
                "delay" => {
                    let (s, d, v) = link(value)?;
                    plan.link_delay = Some((s, d, num(v, "link delay")?));
                }
                "linkdrop" => {
                    let (s, d, v) = link(value)?;
                    plan.link_drop = Some((s, d, prob(v, "link drop probability")?));
                }
                "rto" => plan.rto_ns = num(value, "rto")?,
                "retries" => {
                    plan.max_retries = value
                        .parse()
                        .map_err(|_| format!("retries `{value}` is not an integer"))?;
                }
                "watchdog" => {
                    plan.watchdog_ms = value
                        .parse()
                        .map_err(|_| format!("watchdog `{value}` is not an integer"))?;
                }
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|_| format!("seed `{value}` is not an integer"))?;
                }
                _ => return Err(format!("unknown fault key `{key}`")),
            }
        }
        Ok(plan)
    }
}

/// SplitMix64 finalizer: the one hash every fault decision flows through.
#[inline]
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Map a hash to a uniform f64 in [0, 1).
#[inline]
pub(crate) fn unit(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_spec() {
        let p = FaultPlan::parse(
            "drop=0.02,corrupt=0.001,dup=0.01,jitter=200,crash=2@1000000,\
             slow=1:2.0,delay=0-1:500,linkdrop=0-1:0.2,rto=30000,retries=6,\
             watchdog=100,seed=7",
        )
        .unwrap();
        assert_eq!(p.drop_prob, 0.02);
        assert_eq!(p.corrupt_prob, 0.001);
        assert_eq!(p.duplicate_prob, 0.01);
        assert_eq!(p.jitter_ns, 200.0);
        assert_eq!(p.crash, Some((2, 1_000_000.0)));
        assert_eq!(p.slowdown, Some((1, 2.0)));
        assert_eq!(p.link_delay, Some((0, 1, 500.0)));
        assert_eq!(p.link_drop, Some((0, 1, 0.2)));
        assert_eq!(p.rto_ns, 30_000.0);
        assert_eq!(p.max_retries, 6);
        assert_eq!(p.watchdog_ms, 100);
        assert_eq!(p.seed, 7);
        assert!(p.is_active());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("drop=2.0").is_err());
        assert!(FaultPlan::parse("drop").is_err());
        assert!(FaultPlan::parse("nosuch=1").is_err());
        assert!(FaultPlan::parse("crash=1").is_err());
        assert!(FaultPlan::parse("delay=01:5").is_err());
        assert!(FaultPlan::parse("slow=1:0.5").is_err());
    }

    #[test]
    fn empty_plan_is_inactive() {
        let p = FaultPlan::parse("").unwrap();
        assert!(!p.is_active());
        assert_eq!(p, FaultPlan::new(0));
    }

    #[test]
    fn unit_stays_in_range_and_varies() {
        let mut seen_low = false;
        let mut seen_high = false;
        for i in 0..1000u64 {
            let u = unit(mix(i));
            assert!((0.0..1.0).contains(&u));
            seen_low |= u < 0.1;
            seen_high |= u > 0.9;
        }
        assert!(seen_low && seen_high, "hash output covers the unit range");
    }

    #[test]
    fn fabric_error_display() {
        let e = FabricError::DestinationOutOfRange { dst: 5, size: 2 };
        assert!(e.to_string().contains("5"));
        assert!(e.to_string().contains("out of range"));
    }
}
