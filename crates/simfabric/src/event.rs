//! The discrete-event engine: a timestamped event queue and a
//! cooperative rank scheduler that runs a whole cluster as a
//! single-threaded discrete-event simulation.
//!
//! Under [`EngineMode::EventDriven`] a rank is a resumable state
//! machine: exactly one rank executes at any instant, and every fabric
//! operation that would park a thread in the threaded engine instead
//! hands the *baton* to the scheduler, which releases the next frame
//! from a binary-heap event queue ordered by `(arrival time, src,
//! seq)`. Blocking semantics, watchdogs, and fault handling key off
//! *structural* conditions (is any progress still possible?) instead of
//! wall-clock timeouts, so a 1024-rank job needs no real concurrency at
//! all — rank threads exist only to hold per-rank stacks and
//! thread-local observability state, never to run in parallel.
//!
//! Determinism argument: execution is globally serialized (one Running
//! rank), so event-queue sequence numbers are assigned in a
//! reproducible order; the queue pops in total `(time, src, seq)`
//! order; and the engine above is insensitive to delivery order by
//! construction (arrival timestamps are pure functions of per-link
//! injection sequences, which follow program order). Both engines
//! therefore produce bit-identical virtual clocks and payloads — the
//! contract `tests/engine_diff.rs` enforces case by case.

use std::any::Any;
use std::collections::{BinaryHeap, VecDeque};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use vtime::VTime;

use crate::endpoint::{Delivery, Endpoint};
use crate::topology::Topology;

/// Which cluster engine executes a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// One OS thread per rank; mailboxes are mpsc channels; blocking is
    /// real thread parking. The original engine.
    #[default]
    Threaded,
    /// Single-threaded discrete-event loop with a baton scheduler:
    /// frames are delivered from a binary-heap event queue in
    /// `(time, src, seq)` order and blocking compiles to park/resume
    /// transitions. Scales to thousands of ranks in one process.
    EventDriven,
}

impl EngineMode {
    /// Short CLI/report label.
    pub fn label(self) -> &'static str {
        match self {
            EngineMode::Threaded => "threaded",
            EngineMode::EventDriven => "event",
        }
    }

    /// Parse a CLI spelling (`threaded` | `event`).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "threaded" | "thread" => Ok(EngineMode::Threaded),
            "event" | "event-driven" | "eventdriven" => Ok(EngineMode::EventDriven),
            other => Err(format!(
                "unknown engine {other:?} (expected `threaded` or `event`)"
            )),
        }
    }
}

// ----------------------------------------------------------------------
// Event queue
// ----------------------------------------------------------------------

/// One timestamped event popped from an [`EventQueue`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event<T> {
    /// Virtual instant the event becomes deliverable.
    pub time: VTime,
    /// Source rank (first tie-break for equal times).
    pub src: usize,
    /// Queue-assigned sequence number (final tie-break; preserves
    /// per-source push order among equal timestamps).
    pub seq: u64,
    /// Payload.
    pub item: T,
}

struct HeapEntry<T>(Event<T>);

impl<T> HeapEntry<T> {
    #[inline]
    fn key(&self) -> (VTime, usize, u64) {
        (self.0.time, self.0.src, self.0.seq)
    }
}
impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<T> Eq for HeapEntry<T> {}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEntry<T> {
    /// Reversed: `BinaryHeap` is a max-heap and we want the earliest
    /// `(time, src, seq)` at the top.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.key().cmp(&self.key())
    }
}

/// A deterministic timestamped event queue with a total pop order.
///
/// Pops come out in ascending `(time, src, seq)` order; `seq` is
/// assigned at push, so events pushed for the same `(time, src)` pop in
/// push order (stability). [`EventQueue::push_replay`] re-inserts a
/// previously popped event with its original sequence number, which is
/// how deferred deliveries (e.g. RMA epoch deferral) re-enter the queue
/// without losing their place in the tie-break order.
pub struct EventQueue<T> {
    heap: BinaryHeap<HeapEntry<T>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Insert an event; returns the sequence number it was assigned.
    pub fn push(&mut self, time: VTime, src: usize, item: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry(Event {
            time,
            src,
            seq,
            item,
        }));
        seq
    }

    /// Re-insert a previously popped event (deferral/replay), keeping
    /// its original sequence number so the total order is unchanged.
    pub fn push_replay(&mut self, ev: Event<T>) {
        self.heap.push(HeapEntry(ev));
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<Event<T>> {
        self.heap.pop().map(|e| e.0)
    }

    /// The earliest pending timestamp, if any.
    pub fn peek_time(&self) -> Option<VTime> {
        self.heap.peek().map(|e| e.0.time)
    }

    /// Pending event count.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

// ----------------------------------------------------------------------
// The cooperative rank scheduler
// ----------------------------------------------------------------------

/// Where a rank's state machine currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RankStatus {
    /// Holds the baton and is executing. At most one rank at a time.
    Running,
    /// Parked inside a blocking receive; only a delivery (or a
    /// structural deadlock) resumes it.
    BlockedRecv,
    /// Parked inside a watchdog receive; a delivery resumes it, and a
    /// global stall (no runnable rank, no pending event) resumes it
    /// with a timeout verdict — the virtual-deadline watchdog.
    BlockedTimeout,
    /// Yielded from a non-blocking poll (or not yet started): runnable
    /// whenever the scheduler has nothing timestamped to deliver.
    PollYield,
    /// The rank program returned (or unwound).
    Done,
}

struct RankSlot<M> {
    inbox: VecDeque<Delivery<M>>,
    status: RankStatus,
    /// Set (with `Running`) when the rank is stall-woken: the scheduler
    /// proved no further progress is possible while it was parked.
    stall_wake: bool,
}

struct CoreState<M> {
    queue: EventQueue<(usize, Delivery<M>)>,
    slots: Vec<RankSlot<M>>,
    /// A fault plan is installed somewhere: late frames for exited
    /// ranks are the crash model, not a wiring bug.
    fault_mode: bool,
    /// A rank panicked (or the fabric hit a wiring bug): every parked
    /// rank must unwind instead of waiting forever.
    poisoned: Option<&'static str>,
    /// The first rank that panicked, so the runner can re-throw *its*
    /// payload rather than a cascade panic from an innocent rank.
    original_panicker: Option<usize>,
}

/// Shared state of one event-driven cluster: the event queue, per-rank
/// inboxes and statuses, and one condvar per rank for baton handoff.
pub(crate) struct EventCore<M> {
    state: Mutex<CoreState<M>>,
    cvs: Vec<Condvar>,
}

const POISON_CASCADE: &str = "event engine poisoned: another rank panicked";
const POISON_LATE_FRAME: &str = "fabric mailbox closed: a rank thread exited early (event engine)";

impl<M> EventCore<M> {
    pub(crate) fn new(n: usize) -> Self {
        assert!(n > 0, "cluster must have at least one rank");
        let slots = (0..n)
            .map(|rank| RankSlot {
                inbox: VecDeque::new(),
                // Rank 0 starts with the baton; every other rank is
                // runnable-from-the-start, which is exactly a poll
                // yield at its first instruction.
                status: if rank == 0 {
                    RankStatus::Running
                } else {
                    RankStatus::PollYield
                },
                stall_wake: false,
            })
            .collect();
        EventCore {
            state: Mutex::new(CoreState {
                queue: EventQueue::new(),
                slots,
                fault_mode: false,
                poisoned: None,
                original_panicker: None,
            }),
            cvs: (0..n).map(|_| Condvar::new()).collect(),
        }
    }

    /// Ignore mutex poisoning: unwinding is coordinated through the
    /// explicit `poisoned` flag, which carries a useful message.
    fn lock(&self) -> MutexGuard<'_, CoreState<M>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Treat late frames to finished ranks as the crash model rather
    /// than a wiring bug (set when any endpoint installs a fault plan).
    pub(crate) fn set_fault_mode(&self) {
        self.lock().fault_mode = true;
    }

    fn wake_all(&self, st: &mut CoreState<M>) {
        let _ = st;
        for cv in &self.cvs {
            cv.notify_all();
        }
    }

    /// Pick and resume the next rank. Called with the lock held by a
    /// rank that is parking (or finishing); `from` is that rank, used
    /// to rotate poll-yield resumption so a polling rank cannot starve
    /// the others.
    fn schedule_next(&self, st: &mut CoreState<M>, from: usize) {
        let _sched = obs::wallprof::span(obs::wallprof::Subsystem::Sched);
        obs::wallprof::add(obs::wallprof::Counter::SchedPolls, 1);
        let n = st.slots.len();
        // 1) A parked rank already holding an undelivered frame.
        if let Some(r) = st.slots.iter().position(|s| {
            matches!(
                s.status,
                RankStatus::BlockedRecv | RankStatus::BlockedTimeout
            ) && !s.inbox.is_empty()
        }) {
            st.slots[r].status = RankStatus::Running;
            self.cvs[r].notify_one();
            return;
        }
        // 2) The earliest timestamped event.
        while let Some(ev) = st.queue.pop() {
            let (dst, d) = ev.item;
            if st.slots[dst].status == RankStatus::Done {
                if st.fault_mode {
                    // A crashed/failed rank's stragglers vanish, like a
                    // closed mailbox under a fault plan.
                    continue;
                }
                st.poisoned = Some(POISON_LATE_FRAME);
                self.wake_all(st);
                return;
            }
            st.slots[dst].inbox.push_back(d);
            st.slots[dst].status = RankStatus::Running;
            self.cvs[dst].notify_one();
            return;
        }
        // 3) A poll-yielded (or not-yet-started) rank, rotating from
        //    the parker so repeated polls round-robin.
        for off in 1..=n {
            let r = (from + off) % n;
            if st.slots[r].status == RankStatus::PollYield {
                st.slots[r].status = RankStatus::Running;
                self.cvs[r].notify_one();
                return;
            }
        }
        // 4) Global stall: nothing runnable, nothing queued. Wake the
        //    lowest parked rank with the stall verdict — its watchdog
        //    (or deadlock diagnostics) takes it from there. One at a
        //    time: the woken rank re-enters the scheduler when it next
        //    parks or finishes.
        if let Some(r) = st.slots.iter().position(|s| {
            matches!(
                s.status,
                RankStatus::BlockedRecv | RankStatus::BlockedTimeout
            )
        }) {
            st.slots[r].stall_wake = true;
            st.slots[r].status = RankStatus::Running;
            self.cvs[r].notify_one();
        }
        // else: every rank is Done; nothing to schedule.
    }

    /// Park until this rank holds the baton again (status `Running`).
    fn wait_for_baton<'a>(
        &'a self,
        mut st: MutexGuard<'a, CoreState<M>>,
        rank: usize,
    ) -> MutexGuard<'a, CoreState<M>> {
        while st.slots[rank].status != RankStatus::Running && st.poisoned.is_none() {
            st = self.cvs[rank].wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st
    }

    /// Block a freshly spawned rank thread until the scheduler starts
    /// it (rank 0 starts immediately).
    pub(crate) fn start_wait(&self, rank: usize) {
        let st = self.lock();
        let st = self.wait_for_baton(st, rank);
        if let Some(msg) = st.poisoned {
            drop(st);
            panic!("{msg}");
        }
    }

    /// Event-mode blocking receive: pop the inbox or park until a
    /// frame is delivered. A stall wake here means no frame can ever
    /// arrive — a structural deadlock, which the threaded engine would
    /// express as a hang; the event engine makes it a diagnosis.
    pub(crate) fn recv_blocking(&self, rank: usize) -> Delivery<M> {
        let mut st = self.lock();
        loop {
            if let Some(msg) = st.poisoned {
                drop(st);
                panic!("{msg}");
            }
            if let Some(d) = st.slots[rank].inbox.pop_front() {
                st.slots[rank].stall_wake = false;
                return d;
            }
            if st.slots[rank].stall_wake {
                st.slots[rank].stall_wake = false;
                st.poisoned = Some(
                    "event engine stalled: a rank is blocked in recv with no runnable \
                     rank and no pending events (deadlock)",
                );
                self.wake_all(&mut st);
                drop(st);
                panic!(
                    "event engine stalled: rank {rank} blocked in recv with no runnable \
                     rank and no pending events (deadlock)"
                );
            }
            st.slots[rank].status = RankStatus::BlockedRecv;
            self.schedule_next(&mut st, rank);
            st = self.wait_for_baton(st, rank);
        }
    }

    /// Event-mode watchdog receive: like [`EventCore::recv_blocking`],
    /// but a stall wake returns `None` — the virtual-deadline watchdog
    /// verdict ("no progress is coming"), which the threaded engine
    /// approximates with a wall-clock timeout.
    pub(crate) fn recv_progress_or_stall(&self, rank: usize) -> Option<Delivery<M>> {
        let mut st = self.lock();
        loop {
            if let Some(msg) = st.poisoned {
                drop(st);
                panic!("{msg}");
            }
            if let Some(d) = st.slots[rank].inbox.pop_front() {
                st.slots[rank].stall_wake = false;
                return Some(d);
            }
            if st.slots[rank].stall_wake {
                st.slots[rank].stall_wake = false;
                return None;
            }
            st.slots[rank].status = RankStatus::BlockedTimeout;
            self.schedule_next(&mut st, rank);
            st = self.wait_for_baton(st, rank);
        }
    }

    /// Event-mode non-blocking poll: pop the inbox, or yield the baton
    /// once and try again. Returning `None` is possible only after the
    /// scheduler ran — so poll loops make progress for the whole
    /// cluster instead of spinning.
    pub(crate) fn try_recv(&self, rank: usize) -> Option<Delivery<M>> {
        let mut st = self.lock();
        if let Some(msg) = st.poisoned {
            drop(st);
            panic!("{msg}");
        }
        if let Some(d) = st.slots[rank].inbox.pop_front() {
            return Some(d);
        }
        st.slots[rank].status = RankStatus::PollYield;
        self.schedule_next(&mut st, rank);
        st = self.wait_for_baton(st, rank);
        if let Some(msg) = st.poisoned {
            drop(st);
            panic!("{msg}");
        }
        st.slots[rank].inbox.pop_front()
    }

    /// Enqueue a frame for `dst`. `sender_has_plan` mirrors the
    /// threaded engine's closed-mailbox rule: without a fault plan a
    /// frame for a finished rank is a wiring bug.
    pub(crate) fn push(&self, dst: usize, delivery: Delivery<M>, sender_has_plan: bool) {
        let mut st = self.lock();
        if st.slots[dst].status == RankStatus::Done {
            if sender_has_plan || st.fault_mode {
                return;
            }
            drop(st);
            panic!("fabric mailbox closed: a rank thread exited early");
        }
        let (src, time) = (delivery.src, delivery.arrival);
        st.queue.push(time, src, (dst, delivery));
    }

    /// Mark a rank finished and hand the baton on (or, if it unwound,
    /// poison the core so every parked rank unwinds too).
    pub(crate) fn finish_rank(&self, rank: usize, panicked: bool) {
        let mut st = self.lock();
        st.slots[rank].status = RankStatus::Done;
        st.slots[rank].inbox.clear();
        if panicked {
            if st.original_panicker.is_none() {
                st.original_panicker = Some(rank);
            }
            st.poisoned = Some(POISON_CASCADE);
            self.wake_all(&mut st);
        } else {
            self.schedule_next(&mut st, rank);
        }
    }

    fn original_panicker(&self) -> Option<usize> {
        self.lock().original_panicker
    }
}

// ----------------------------------------------------------------------
// The event-driven cluster runner
// ----------------------------------------------------------------------

/// Stack size for rank threads under the event engine. Rank threads
/// never run concurrently — they are coroutine frames — so a modest
/// fixed stack keeps 1024-rank jobs cheap.
const RANK_STACK_BYTES: usize = 2 << 20;

/// [`crate::run_cluster`]'s event-driven twin: run `f` once per rank as
/// a cooperatively scheduled state machine. Same contract — per-rank
/// results in rank order, panics propagate — but only one rank ever
/// executes at a time, driven by the `(time, src, seq)` event queue.
pub fn run_cluster_event<M, R, F>(topo: Topology, f: F) -> Vec<R>
where
    M: Send + 'static,
    R: Send,
    F: Fn(Endpoint<M>) -> R + Sync,
{
    let n = topo.size();
    let core: Arc<EventCore<M>> = Arc::new(EventCore::new(n));
    let f = &f;
    type Caught<R> = Result<R, Box<dyn Any + Send>>;
    let mut results: Vec<Caught<R>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for rank in 0..n {
            let ep = Endpoint::new_event(rank, topo, core.clone());
            let core = core.clone();
            let h = std::thread::Builder::new()
                .name(format!("rank-{rank}"))
                .stack_size(RANK_STACK_BYTES)
                .spawn_scoped(scope, move || {
                    core.start_wait(rank);
                    let out = catch_unwind(AssertUnwindSafe(|| f(ep)));
                    core.finish_rank(rank, out.is_err());
                    out
                })
                .expect("spawn rank thread");
            handles.push(h);
        }
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(Err))
            .collect()
    });
    // Re-throw the first panic from the rank that caused it, not from
    // a rank that merely unwound in the cascade.
    if let Some(r) = core.original_panicker() {
        if results[r].is_err() {
            if let Err(payload) = results.swap_remove(r) {
                resume_unwind(payload);
            }
        }
    }
    results
        .into_iter()
        .map(|r| match r {
            Ok(v) => v,
            Err(payload) => resume_unwind(payload),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtime::LogGp;

    fn params() -> LogGp {
        LogGp {
            latency_ns: 1000.0,
            o_send_ns: 100.0,
            o_recv_ns: 100.0,
            gap_msg_ns: 50.0,
            gap_per_byte_ns: 0.1,
        }
    }

    #[test]
    fn queue_pops_in_time_src_seq_order() {
        let mut q = EventQueue::new();
        q.push(VTime::from_nanos(30.0), 0, "c");
        q.push(VTime::from_nanos(10.0), 1, "a2");
        q.push(VTime::from_nanos(10.0), 0, "a1");
        q.push(VTime::from_nanos(20.0), 0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|e| e.item).collect();
        assert_eq!(order, vec!["a1", "a2", "b", "c"]);
    }

    #[test]
    fn queue_equal_keys_pop_in_push_order() {
        let mut q = EventQueue::new();
        for i in 0..16 {
            q.push(VTime::from_nanos(5.0), 3, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|e| e.item).collect();
        assert_eq!(order, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn queue_replay_keeps_total_order() {
        let mut q = EventQueue::new();
        q.push(VTime::from_nanos(10.0), 0, "first");
        q.push(VTime::from_nanos(10.0), 0, "second");
        let ev = q.pop().unwrap();
        assert_eq!(ev.item, "first");
        // Deferral: the popped event re-enters and still sorts first.
        q.push_replay(ev);
        assert_eq!(q.pop().unwrap().item, "first");
        assert_eq!(q.pop().unwrap().item, "second");
        assert!(q.pop().is_none());
    }

    #[test]
    fn event_ring_matches_threaded_semantics() {
        let topo = Topology::new(2, 4); // 8 ranks
        let results = run_cluster_event::<u64, u64, _>(topo, |mut ep| {
            let n = ep.size();
            let rank = ep.rank();
            let next = (rank + 1) % n;
            if rank == 0 {
                ep.send(next, VTime::ZERO, 8, &params(), 1).unwrap();
                ep.recv_blocking().msg
            } else {
                let d = ep.recv_blocking();
                ep.send(next, d.arrival, 8, &params(), d.msg + 1).unwrap();
                d.msg
            }
        });
        assert_eq!(results[0], 8);
        for (r, v) in results.iter().enumerate().skip(1) {
            assert_eq!(*v, r as u64);
        }
    }

    #[test]
    fn event_engine_poll_loops_make_progress() {
        // Rank 1 spins on try_recv until the frame shows up; the yield
        // must hand the baton to rank 0 so the send ever happens.
        let results = run_cluster_event::<u32, u32, _>(Topology::new(2, 1), |mut ep| {
            if ep.rank() == 0 {
                ep.send(1, VTime::ZERO, 8, &params(), 77).unwrap();
                0
            } else {
                loop {
                    if let Some(d) = ep.try_recv() {
                        return d.msg;
                    }
                }
            }
        });
        assert_eq!(results, vec![0, 77]);
    }

    #[test]
    #[should_panic(expected = "rank 2 failed")]
    fn event_rank_panic_propagates() {
        run_cluster_event::<(), (), _>(Topology::new(4, 1), |ep| {
            if ep.rank() == 2 {
                panic!("rank 2 failed");
            }
            // Other ranks park so the cascade path is exercised too.
            if ep.rank() == 3 {
                let _ = ep.recv_blocking();
            }
        });
    }

    #[test]
    fn watchdog_recv_returns_none_on_structural_stall() {
        let results = run_cluster_event::<u32, bool, _>(Topology::new(2, 1), |ep| {
            if ep.rank() == 0 {
                // Never sends: rank 1's watchdog receive must come back
                // with the stall verdict instead of hanging.
                true
            } else {
                ep.recv_timeout(std::time::Duration::from_millis(1))
                    .is_none()
            }
        });
        assert_eq!(results, vec![true, true]);
    }

    #[test]
    fn event_results_are_in_rank_order() {
        let r = run_cluster_event::<(), usize, _>(Topology::new(2, 3), |ep| ep.rank());
        assert_eq!(r, vec![0, 1, 2, 3, 4, 5]);
    }
}
