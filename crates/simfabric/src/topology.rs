//! Cluster topology: how ranks map onto nodes.
//!
//! The paper's experiments use two layouts: 2 ranks on 1 node (intra-node
//! pt2pt), 2 ranks on 2 nodes (inter-node pt2pt), and 4 nodes × 16 ppn
//! (collectives). Ranks are assigned to nodes in *block* order, matching
//! the default `mpirun` mapping used by both MVAPICH2 and Open MPI
//! (`--map-by core` within a node first).

/// A cluster of `nodes` nodes with `ppn` ranks per node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    nodes: usize,
    ppn: usize,
}

impl Topology {
    /// Create a topology. Panics if either dimension is zero.
    pub fn new(nodes: usize, ppn: usize) -> Self {
        assert!(nodes > 0, "topology needs at least one node");
        assert!(ppn > 0, "topology needs at least one rank per node");
        Topology { nodes, ppn }
    }

    /// Convenience: `n` ranks all on one node.
    pub fn single_node(ppn: usize) -> Self {
        Self::new(1, ppn)
    }

    /// Total number of ranks in the cluster.
    #[inline]
    pub fn size(&self) -> usize {
        self.nodes * self.ppn
    }

    /// Number of nodes.
    #[inline]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Ranks per node.
    #[inline]
    pub fn ppn(&self) -> usize {
        self.ppn
    }

    /// The node hosting `rank` (block mapping).
    #[inline]
    pub fn node_of(&self, rank: usize) -> usize {
        debug_assert!(rank < self.size(), "rank {rank} out of range");
        rank / self.ppn
    }

    /// Whether two ranks share a node (and therefore the shared-memory
    /// transport).
    #[inline]
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// The lowest rank on `rank`'s node — the conventional "node leader"
    /// used by hierarchical collective algorithms.
    #[inline]
    pub fn node_leader(&self, rank: usize) -> usize {
        self.node_of(rank) * self.ppn
    }

    /// Iterator over the ranks on the same node as `rank`.
    pub fn node_peers(&self, rank: usize) -> impl Iterator<Item = usize> {
        let leader = self.node_leader(rank);
        leader..leader + self.ppn
    }

    /// Iterator over all node-leader ranks.
    pub fn leaders(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.nodes).map(move |n| n * self.ppn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_mapping() {
        let t = Topology::new(4, 16);
        assert_eq!(t.size(), 64);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(15), 0);
        assert_eq!(t.node_of(16), 1);
        assert_eq!(t.node_of(63), 3);
    }

    #[test]
    fn same_node_and_leader() {
        let t = Topology::new(2, 4);
        assert!(t.same_node(0, 3));
        assert!(!t.same_node(3, 4));
        assert_eq!(t.node_leader(5), 4);
        assert_eq!(t.node_leader(3), 0);
        assert_eq!(t.node_peers(6).collect::<Vec<_>>(), vec![4, 5, 6, 7]);
        assert_eq!(t.leaders().collect::<Vec<_>>(), vec![0, 4]);
    }

    #[test]
    fn single_node_helper() {
        let t = Topology::single_node(2);
        assert_eq!(t.nodes(), 1);
        assert_eq!(t.size(), 2);
        assert!(t.same_node(0, 1));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = Topology::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ppn_rejected() {
        let _ = Topology::new(1, 0);
    }
}
