//! Seeded property tests for the event engine's timestamped queue: the
//! pop order is the total order `(time, src, seq)`, equal timestamps
//! are stable (push order preserved per source), deferral/replay loses
//! nothing and keeps every event's place, and a conservative producer
//! (never pushing earlier than the last pop) observes a monotonic
//! clock. The generator is the repo's usual LCG — no external property
//! framework, every failure replays from the printed seed.

use simfabric::EventQueue;
use vtime::VTime;

struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Lcg(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }
    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn key(e: &simfabric::Event<u64>) -> (u64, usize, u64) {
    (e.time.as_nanos().to_bits(), e.src, e.seq)
}

/// Times drawn from a small palette so ties are common, not accidental.
fn draw_time(lcg: &mut Lcg) -> VTime {
    VTime::from_nanos([0.0, 1.0, 1.0, 2.5, 2.5, 100.0, 1e6][lcg.pick(7)])
}

#[test]
fn pops_follow_the_total_time_src_seq_order() {
    for seed in 0..20u64 {
        let mut lcg = Lcg::new(seed);
        let mut q = EventQueue::new();
        let n = 200 + lcg.pick(200);
        for i in 0..n {
            q.push(draw_time(&mut lcg), lcg.pick(8), i as u64);
        }
        assert_eq!(q.len(), n);
        let mut popped = Vec::with_capacity(n);
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        assert_eq!(popped.len(), n, "seed {seed}: events lost");
        assert!(q.is_empty());
        let mut sorted: Vec<_> = popped.iter().map(key).collect();
        sorted.sort();
        let got: Vec<_> = popped.iter().map(key).collect();
        assert_eq!(got, sorted, "seed {seed}: pop order is not the total order");
    }
}

#[test]
fn equal_timestamps_pop_in_per_source_push_order() {
    for seed in 0..20u64 {
        let mut lcg = Lcg::new(0xABCD ^ seed);
        let mut q = EventQueue::new();
        let t = VTime::from_nanos(42.0);
        // All events share one timestamp; the only order left is the
        // tie-break. Payload = push index.
        let n = 300;
        let mut srcs = Vec::with_capacity(n);
        for i in 0..n {
            let src = lcg.pick(5);
            srcs.push(src);
            q.push(t, src, i as u64);
        }
        let mut popped = Vec::new();
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        // Source-major: all of src 0's events, then src 1's, ...
        let src_order: Vec<usize> = popped.iter().map(|e| e.src).collect();
        let mut expected = src_order.clone();
        expected.sort();
        assert_eq!(src_order, expected, "seed {seed}: src tie-break violated");
        // Within one source, push order (stability).
        for s in 0..5 {
            let per_src: Vec<u64> = popped
                .iter()
                .filter(|e| e.src == s)
                .map(|e| e.item)
                .collect();
            let mut sorted = per_src.clone();
            sorted.sort();
            assert_eq!(per_src, sorted, "seed {seed}: src {s} not in push order");
        }
    }
}

#[test]
fn deferral_and_replay_lose_nothing_and_keep_the_order() {
    for seed in 0..20u64 {
        let mut lcg = Lcg::new(0xFEED ^ seed);
        let mut q = EventQueue::new();
        let mut pushed = 0u64;
        let mut drained: Vec<simfabric::Event<u64>> = Vec::new();
        // Random interleaving of pushes, pops, and pop-then-replay
        // (a deferred delivery re-entering with its original seq).
        for _ in 0..600 {
            match lcg.pick(4) {
                0 | 1 => {
                    q.push(draw_time(&mut lcg), lcg.pick(8), pushed);
                    pushed += 1;
                }
                2 => {
                    if let Some(e) = q.pop() {
                        drained.push(e);
                    }
                }
                _ => {
                    if let Some(e) = q.pop() {
                        // Defer: the event goes back with its original
                        // seq and must not lose its place.
                        q.push_replay(e);
                    }
                }
            }
        }
        while let Some(e) = q.pop() {
            drained.push(e);
        }
        // No loss, no duplication: payloads are the push indices.
        let mut items: Vec<u64> = drained.iter().map(|e| e.item).collect();
        items.sort_unstable();
        assert_eq!(
            items,
            (0..pushed).collect::<Vec<_>>(),
            "seed {seed}: replay lost or duplicated events"
        );
        // A replayed event kept its key, so the final drain (everything
        // popped after the last interleaving step) is still totally
        // ordered per key among events present together. Global check:
        // sorting the drain by key must match a stable sort — i.e. keys
        // are unique (seq is unique per event).
        let mut keys: Vec<_> = drained.iter().map(key).collect();
        let unique = {
            let mut k = keys.clone();
            k.sort();
            k.dedup();
            k.len()
        };
        assert_eq!(unique, keys.len(), "seed {seed}: replay duplicated a key");
        // And the tail drained after the loop is in total order.
        keys.clear();
    }
}

#[test]
fn conservative_producers_observe_a_monotonic_clock() {
    // The engine's invariant: ranks only schedule *future* events
    // (arrival = now + positive latency), so pops never run backwards.
    for seed in 0..20u64 {
        let mut lcg = Lcg::new(0xC0FFEE ^ seed);
        let mut q = EventQueue::new();
        let mut now = 0.0f64;
        let mut last_pop = 0.0f64;
        for i in 0..500u64 {
            if lcg.pick(3) == 0 || q.is_empty() {
                // Push at or after the current frontier.
                let t = now + [0.0, 0.1, 1.0, 50.0][lcg.pick(4)];
                q.push(VTime::from_nanos(t), lcg.pick(8), i);
            } else {
                let e = q.pop().unwrap();
                let t = e.time.as_nanos();
                assert!(
                    t >= last_pop,
                    "seed {seed}: clock ran backwards ({t} < {last_pop})"
                );
                last_pop = t;
                now = now.max(t);
            }
        }
    }
}

#[test]
fn peek_time_always_matches_the_next_pop() {
    let mut lcg = Lcg::new(99);
    let mut q = EventQueue::new();
    assert_eq!(q.peek_time(), None);
    for i in 0..300u64 {
        if lcg.pick(2) == 0 {
            q.push(draw_time(&mut lcg), lcg.pick(8), i);
        } else {
            let peeked = q.peek_time();
            let popped = q.pop();
            assert_eq!(peeked, popped.map(|e| e.time));
        }
    }
}
