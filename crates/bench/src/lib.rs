//! Figure-regeneration harness: every figure in the paper's evaluation
//! (Figures 5–18) as a reproducible function, plus the headline summary
//! ratios quoted in the abstract.
//!
//! `cargo run -p ombj-bench --bin figures --release` regenerates them
//! all; `EXPERIMENTS.md` records paper-vs-measured values.

pub mod figures;
pub mod perf;

pub use figures::{all_figure_ids, headline_summary, run_figure, Figure, Scale, Summary};
