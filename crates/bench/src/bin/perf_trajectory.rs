//! Simulator self-profiling trajectory: run the fixed perf basket with
//! `obs::wallprof` enabled, write a schema-versioned `BENCH_<pr>.json`,
//! and (optionally) gate against a committed baseline.
//!
//! ```text
//! perf-trajectory [--quick] [--out PATH] [--pr N]
//!                 [--baseline PATH] [--gate-pct P]
//! ```
//!
//! Exit status: 0 within the gate (or no baseline given), 1 when total
//! events/sec dropped more than `--gate-pct` (default 25) below the
//! baseline, 2 on usage/IO errors.

use ombj_bench::perf;

fn usage() -> ! {
    eprintln!(
        "usage: perf-trajectory [--quick] [--out PATH] [--pr N] [--baseline PATH] [--gate-pct P]"
    );
    std::process::exit(2)
}

fn main() {
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut pr: u64 = 9;
    let mut baseline: Option<String> = None;
    let mut gate_pct = perf::DEFAULT_GATE_PCT;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let val = |it: &mut std::slice::Iter<String>| -> String {
            it.next().cloned().unwrap_or_else(|| usage())
        };
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = Some(val(&mut it)),
            "--pr" => pr = val(&mut it).parse().unwrap_or_else(|_| usage()),
            "--baseline" => baseline = Some(val(&mut it)),
            "--gate-pct" => gate_pct = val(&mut it).parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    let out = out.unwrap_or_else(|| format!("BENCH_{pr}.json"));

    eprintln!(
        "running perf basket ({} mode)...",
        if quick { "quick" } else { "full" }
    );
    let results = perf::run_basket(quick);
    let text = perf::bench_json(&results, &perf::commit_id(), pr, quick);
    if let Err(e) = std::fs::write(&out, &text) {
        eprintln!("error: writing {out}: {e}");
        std::process::exit(2);
    }
    let doc = perf::parse_bench(&text).expect("own output parses");
    println!("{}", perf::summary_line(&doc));
    eprintln!("wrote {out}");

    if let Some(base_path) = baseline {
        let base_text = std::fs::read_to_string(&base_path).unwrap_or_else(|e| {
            eprintln!("error: reading baseline {base_path}: {e}");
            std::process::exit(2);
        });
        let base = perf::parse_bench(&base_text).unwrap_or_else(|e| {
            eprintln!("error: parsing baseline {base_path}: {e}");
            std::process::exit(2);
        });
        match perf::compare_baseline(&doc, &base, gate_pct) {
            Ok(lines) => {
                for l in lines {
                    println!("{l}");
                }
                println!("perf gate: PASS");
            }
            Err(lines) => {
                for l in lines {
                    println!("{l}");
                }
                println!("perf gate: FAIL (events/sec dropped more than {gate_pct:.0}%)");
                std::process::exit(1);
            }
        }
    }
}
