//! Regenerate the paper's figures.
//!
//! ```text
//! figures [--only figN[,figM...]] [--quick] [--summary] [--trace]
//! ```
//!
//! * default: regenerate all of Figures 5–18 at full scale and print the
//!   headline summary;
//! * `--only`: restrict to specific figures;
//! * `--quick`: test-sized sweeps (same shapes, much faster);
//! * `--summary`: print only the headline summary;
//! * `--trace`: record virtual-time trace events during every run —
//!   instrumentation has zero virtual cost, so the printed figures are
//!   bit-identical with or without this flag (a workspace test enforces
//!   it).

use ombj::report::render_comparison;
use ombj_bench::figures::summary_from;
use ombj_bench::{all_figure_ids, run_figure, Figure, Scale};

fn print_figure(fig: &Figure) {
    let refs: Vec<&ombj::Series> = fig.series.iter().collect();
    print!(
        "{}",
        render_comparison(&format!("{}: {} [{}]", fig.id, fig.title, fig.unit), &refs)
    );
    for n in &fig.notes {
        println!("  note: {n}");
    }
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut only: Option<Vec<String>> = None;
    let mut scale = Scale::Full;
    let mut summary_only = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--only" => {
                let v = it.next().expect("--only needs a figure list");
                only = Some(v.split(',').map(|s| s.trim().to_string()).collect());
            }
            "--quick" => scale = Scale::Quick,
            "--summary" => summary_only = true,
            "--trace" => ombj_bench::figures::set_tracing(true),
            other => {
                eprintln!("unknown argument {other}");
                eprintln!("usage: figures [--only figN[,figM...]] [--quick] [--summary] [--trace]");
                std::process::exit(2);
            }
        }
    }

    let ids: Vec<&str> = match &only {
        Some(list) => list.iter().map(|s| s.as_str()).collect(),
        None => all_figure_ids().to_vec(),
    };

    if summary_only {
        let summary = ombj_bench::headline_summary(scale);
        print!("{summary}");
        return;
    }

    let mut figs: Vec<Figure> = Vec::new();
    for id in &ids {
        eprintln!("[figures] regenerating {id} ...");
        let fig = run_figure(id, scale);
        print_figure(&fig);
        figs.push(fig);
    }

    // Print the headline summary when every input figure is available.
    let need = ["fig5", "fig11", "fig14", "fig15", "fig16", "fig17", "fig18"];
    let get = |id: &str| figs.iter().find(|f| f.id == id);
    if need.iter().all(|id| get(id).is_some()) {
        let s = summary_from(
            get("fig5").unwrap(),
            get("fig11").unwrap(),
            get("fig14").unwrap(),
            get("fig15").unwrap(),
            get("fig16").unwrap(),
            get("fig17").unwrap(),
            get("fig18").unwrap(),
        );
        print!("{s}");
    }
}
