//! Ablation studies over the design decisions DESIGN.md calls out.
//!
//! All numbers are *virtual* microseconds (deterministic). Each section
//! isolates one decision by toggling it while holding everything else
//! fixed:
//!
//! 1. the buffering-layer pool vs. allocating a direct buffer per message;
//! 2. the three JNI array-access strategies (copy / critical / staging);
//! 3. two-level (hierarchical) vs. flat collective algorithms;
//! 4. the eager→rendezvous threshold;
//! 5. Java-layer call overhead contribution.
//!
//! Run with: `cargo run --release -p ombj-bench --bin ablations`

use mpisim::datatype::BYTE;
use mpisim::{run_mpi, Profile, ReduceOp};
use mvapich2j::{run_job, JobConfig, Topology};
use vtime::{Clock, CostModel};

fn main() {
    pool_ablation();
    jni_strategy_ablation();
    hierarchy_ablation();
    eager_threshold_ablation();
    java_layer_ablation();
}

/// 1. Pool vs. allocate-per-message: array ping-pong latency.
fn pool_ablation() {
    println!("== ablation 1: buffering-layer pool vs allocateDirect per message");
    println!("   (array ping-pong, intra-node, one-way latency in us)\n");
    println!(
        "{:>9}  {:>10}  {:>12}  {:>8}",
        "size", "pooled", "unpooled", "saving"
    );
    for size in [64usize, 1024, 16 << 10, 256 << 10] {
        let lat = |pool_limit: usize| -> f64 {
            let mut cfg = JobConfig::mvapich2j(Topology::single_node(2));
            cfg.pool_limit = pool_limit;
            let r = run_job(cfg, move |env| {
                let w = env.world();
                let me = env.rank();
                let arr = env.new_array::<i8>(size).unwrap();
                env.barrier(w).unwrap();
                let iters = 50;
                let t0 = env.now();
                for _ in 0..iters {
                    if me == 0 {
                        env.send_array(arr, size as i32, 1, 0, w).unwrap();
                        env.recv_array(arr, size as i32, 1, 0, w).unwrap();
                    } else {
                        env.recv_array(arr, size as i32, 0, 0, w).unwrap();
                        env.send_array(arr, size as i32, 0, 0, w).unwrap();
                    }
                }
                (env.now() - t0).as_micros() / (2.0 * iters as f64)
            });
            r[0]
        };
        let pooled = lat(8);
        let unpooled = lat(0);
        println!(
            "{size:>9}  {pooled:>10.3}  {unpooled:>12.3}  {:>7.1}%",
            100.0 * (unpooled - pooled) / unpooled
        );
    }
    println!();
}

/// 2. JNI array-access strategies: cost to expose a 1 MiB array to native
/// code and hand any changes back.
fn jni_strategy_ablation() {
    println!("== ablation 2: JNI array-access strategy (1 MiB array, virtual us)\n");
    let cost = CostModel::default();
    let n = 1 << 20;

    // a) Get/ReleaseArrayElements: copy out + copy back.
    let mut rt = mrt::Runtime::new(cost);
    let mut clock = Clock::new();
    let arr = rt.alloc_array::<i8>(n, &mut clock).unwrap();
    let t0 = clock.now();
    let native = nif::get_array_elements(&rt, &mut clock, arr).unwrap();
    nif::release_array_elements(
        &mut rt,
        &mut clock,
        arr,
        &native,
        nif::ReleaseMode::CopyBack,
    )
    .unwrap();
    let copy_us = (clock.now() - t0).as_micros();

    // b) GetPrimitiveArrayCritical: zero copy, GC locked.
    let t1 = clock.now();
    {
        let _g = nif::get_primitive_array_critical(&mut rt, &mut clock, arr).unwrap();
    }
    let critical_us = (clock.now() - t1).as_micros();

    // c) Buffering layer: stage into a pooled direct buffer + unstage.
    let mut pool = mpjbuf::BufferPool::new();
    // Warm the pool (steady-state behaviour).
    let warm = mpjbuf::Buffer::from_pool(&mut pool, &mut rt, &mut clock, n);
    warm.free(&mut pool, &mut rt, &mut clock);
    let t2 = clock.now();
    let mut buf = mpjbuf::Buffer::from_pool(&mut pool, &mut rt, &mut clock, n);
    buf.stage_array(&mut rt, &mut clock, arr, 0, n).unwrap();
    buf.commit();
    buf.unstage_array(&mut rt, &mut clock, arr, 0, n).unwrap();
    buf.free(&mut pool, &mut rt, &mut clock);
    let staging_us = (clock.now() - t2).as_micros();

    println!("   Get/ReleaseArrayElements (copy both ways) : {copy_us:>9.2} us");
    println!("   GetPrimitiveArrayCritical (GC disabled)   : {critical_us:>9.2} us");
    println!("   buffering layer (pooled staging copies)   : {staging_us:>9.2} us");
    println!("   -> critical is cheapest but blocks the collector; the");
    println!("      buffering layer matches the copy cost while keeping GC");
    println!("      live and enabling subsets/derived datatypes\n");
}

/// 3. Hierarchical vs. flat collectives at fixed fabric parameters.
fn hierarchy_ablation() {
    println!("== ablation 3: two-level vs flat collectives (4x8 ranks, virtual us)\n");
    let topo = Topology::new(4, 8);
    let mut flat = Profile::mvapich2();
    flat.coll.hierarchical = false;
    println!(
        "{:>12} {:>9}  {:>12}  {:>9}",
        "collective", "size", "two-level", "flat"
    );
    for (label, size) in [
        ("allreduce", 256usize),
        ("allreduce", 64 << 10),
        ("bcast", 256),
        ("bcast", 64 << 10),
    ] {
        let time = |profile: Profile| -> f64 {
            let r = run_mpi(topo, profile, move |mpi| {
                let w = mpi.world();
                let send = vec![1u8; size];
                let mut recv = vec![0u8; size];
                mpi.barrier(w).unwrap();
                let iters = 20;
                let t0 = mpi.now();
                for _ in 0..iters {
                    if label == "allreduce" {
                        mpi.allreduce(&send, &mut recv, size as i32, &BYTE, ReduceOp::Sum, w)
                            .unwrap();
                    } else {
                        mpi.bcast(&mut recv, size as i32, &BYTE, 0, w).unwrap();
                    }
                }
                (mpi.now() - t0).as_micros() / iters as f64
            });
            r.iter().copied().fold(0.0f64, f64::max)
        };
        println!(
            "{label:>12} {size:>9}  {:>12.2}  {:>9.2}",
            time(Profile::mvapich2()),
            time(flat)
        );
    }
    println!("   -> note: the fabric model has no NIC-sharing contention, so");
    println!("      flat algorithms look better here than on real hardware,");
    println!("      where 16 concurrent flows share each node's HCA. The");
    println!("      library comparison in the figures is unaffected (both");
    println!("      profiles run on the same fabric model); see DESIGN.md.");
    println!();
}

/// 4. Eager→rendezvous threshold sweep on the inter-node path.
fn eager_threshold_ablation() {
    println!("== ablation 4: eager/rendezvous threshold (inter-node latency, us)\n");
    let sizes = [4usize << 10, 16 << 10, 64 << 10];
    print!("{:>12}", "threshold");
    for s in sizes {
        print!("  {:>9}B", s);
    }
    println!();
    for threshold in [0usize, 8 << 10, 32 << 10, 256 << 10] {
        let mut profile = Profile::mvapich2();
        profile.net.eager_threshold = threshold;
        print!("{threshold:>12}");
        for size in sizes {
            let r = run_mpi(Topology::new(2, 1), profile, move |mpi| {
                let w = mpi.world();
                let me = mpi.rank(w).unwrap();
                let mut buf = vec![0u8; size];
                mpi.barrier(w).unwrap();
                let iters = 30;
                let t0 = mpi.now();
                for _ in 0..iters {
                    if me == 0 {
                        mpi.send(&buf, size as i32, &BYTE, 1, 0, w).unwrap();
                        mpi.recv(&mut buf, size as i32, &BYTE, 1, 0, w).unwrap();
                    } else {
                        mpi.recv(&mut buf, size as i32, &BYTE, 0, 0, w).unwrap();
                        mpi.send(&buf, size as i32, &BYTE, 0, 0, w).unwrap();
                    }
                }
                (mpi.now() - t0).as_micros() / (2.0 * iters as f64)
            });
            print!("  {:>10.2}", r[0]);
        }
        println!();
    }
    println!("   -> eager pays a CPU copy per byte; rendezvous pays a handshake.");
    println!("      The default (16 KiB) sits near the crossover.\n");
}

/// 5. Java-layer overhead contribution (Figure 11 decomposition).
fn java_layer_ablation() {
    println!("== ablation 5: where the Java-vs-native overhead comes from\n");
    let topo = Topology::new(2, 1);
    let iters = 200;
    let native = run_mpi(topo, Profile::mvapich2(), move |mpi| {
        let w = mpi.world();
        let me = mpi.rank(w).unwrap();
        let mut buf = vec![0u8; 8];
        mpi.barrier(w).unwrap();
        let t0 = mpi.now();
        for _ in 0..iters {
            if me == 0 {
                mpi.send(&buf, 8, &BYTE, 1, 0, w).unwrap();
                mpi.recv(&mut buf, 8, &BYTE, 1, 0, w).unwrap();
            } else {
                mpi.recv(&mut buf, 8, &BYTE, 0, 0, w).unwrap();
                mpi.send(&buf, 8, &BYTE, 0, 0, w).unwrap();
            }
        }
        (mpi.now() - t0).as_micros() / (2.0 * iters as f64)
    })[0];
    let java = |zero_overhead: bool| -> f64 {
        let mut cfg = JobConfig::mvapich2j(topo);
        if zero_overhead {
            cfg.flavor.call_overhead_ns = 0.0;
            cfg.flavor.garbage_per_call = 0;
            cfg.cost.jni.transition_ns = 0.0;
            cfg.cost.jni.get_direct_buffer_address_ns = 0.0;
        }
        run_job(cfg, move |env| {
            let w = env.world();
            let me = env.rank();
            let buf = env.new_direct(8);
            env.barrier(w).unwrap();
            let t0 = env.now();
            for _ in 0..iters {
                if me == 0 {
                    env.send_buffer(buf, 8, &BYTE, 1, 0, w).unwrap();
                    env.recv_buffer(buf, 8, &BYTE, 1, 0, w).unwrap();
                } else {
                    env.recv_buffer(buf, 8, &BYTE, 0, 0, w).unwrap();
                    env.send_buffer(buf, 8, &BYTE, 0, 0, w).unwrap();
                }
            }
            (env.now() - t0).as_micros() / (2.0 * iters as f64)
        })[0]
    };
    let full = java(false);
    let stripped = java(true);
    println!("   native MVAPICH2 8 B latency        : {native:>7.3} us");
    println!("   MVAPICH2-J (full Java layer)       : {full:>7.3} us");
    println!("   MVAPICH2-J (JNI+overhead zeroed)   : {stripped:>7.3} us");
    println!(
        "   -> JNI transitions + call overhead account for {:.0}% of the gap",
        100.0 * (full - stripped) / (full - native)
    );
}
