//! One function per figure of the paper's evaluation section.
//!
//! Experiment index (see also `DESIGN.md`):
//!
//! | id    | paper figure                               | workload            |
//! |-------|--------------------------------------------|---------------------|
//! | fig5  | intra-node latency, small                  | osu_latency 1×2     |
//! | fig6  | intra-node latency, large                  | osu_latency 1×2     |
//! | fig7  | intra-node bandwidth, small                | osu_bw 1×2          |
//! | fig8  | intra-node bandwidth, large                | osu_bw 1×2          |
//! | fig9  | inter-node latency, small                  | osu_latency 2×1     |
//! | fig10 | inter-node latency, large                  | osu_latency 2×1     |
//! | fig11 | Java-vs-native latency overhead            | osu_latency 2×1     |
//! | fig12 | inter-node bandwidth, small                | osu_bw 2×1          |
//! | fig13 | inter-node bandwidth, large                | osu_bw 2×1          |
//! | fig14 | bcast latency, small, 4 nodes × 16 ppn     | osu_bcast 4×16      |
//! | fig15 | bcast latency, large                       | osu_bcast 4×16      |
//! | fig16 | allreduce latency, small                   | osu_allreduce 4×16  |
//! | fig17 | allreduce latency, large                   | osu_allreduce 4×16  |
//! | fig18 | latency with validation, arrays vs buffers | osu_latency -validate 2×1 |

use std::sync::atomic::{AtomicBool, Ordering};

use mpisim::Profile;
use ombj::report::mean_ratio;
use ombj::{
    native::native_latency, run_with_obs, Api, BenchOptions, Benchmark, CollOp, Library, RunSpec,
    Series, SizeValue,
};
use simfabric::{EngineMode, Topology};

/// Process-wide switch: when on, every figure run records trace events.
/// Exists to demonstrate (and let tests assert) that observability has
/// zero virtual cost — figure output is bit-identical either way.
static TRACE_FIGURES: AtomicBool = AtomicBool::new(false);

/// Turn event tracing on/off for subsequent figure runs (`--trace`).
pub fn set_tracing(on: bool) {
    TRACE_FIGURES.store(on, Ordering::SeqCst);
}

fn obs_opts() -> obs::ObsOptions {
    obs::ObsOptions {
        tracing: TRACE_FIGURES.load(Ordering::SeqCst),
        ..Default::default()
    }
}

/// `ombj::run` under the figure-wide tracing switch.
fn run(spec: RunSpec) -> Option<Series> {
    run_with_obs(spec, obs_opts()).0
}

/// How big a run to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's sweep: sizes to 4 MB, 4 nodes × 16 ppn collectives.
    Full,
    /// Test-sized: small sweeps, 2 nodes × 4 ppn collectives. Same
    /// qualitative shapes, seconds instead of minutes.
    Quick,
}

struct Sweep {
    p2p_small: (usize, usize),
    p2p_large: (usize, usize),
    bw_small: (usize, usize),
    bw_large: (usize, usize),
    coll_small: (usize, usize),
    coll_large: (usize, usize),
    coll_topo: Topology,
    iters: usize,
    iters_large: usize,
}

impl Sweep {
    fn of(scale: Scale) -> Sweep {
        match scale {
            Scale::Full => Sweep {
                p2p_small: (1, 1 << 10),
                p2p_large: (2 << 10, 4 << 20),
                bw_small: (1, 8 << 10),
                bw_large: (16 << 10, 4 << 20),
                coll_small: (4, 4 << 10),
                coll_large: (8 << 10, 1 << 20),
                coll_topo: Topology::new(4, 16),
                iters: 100,
                iters_large: 16,
            },
            Scale::Quick => Sweep {
                p2p_small: (1, 256),
                p2p_large: (2 << 10, 64 << 10),
                bw_small: (1, 2 << 10),
                bw_large: (16 << 10, 128 << 10),
                coll_small: (4, 512),
                coll_large: (8 << 10, 64 << 10),
                coll_topo: Topology::new(2, 4),
                iters: 10,
                iters_large: 3,
            },
        }
    }

    fn opts(&self, (min, max): (usize, usize)) -> BenchOptions {
        BenchOptions {
            min_size: min,
            max_size: max,
            iterations: self.iters,
            warmup: (self.iters / 10).max(1),
            iterations_large: self.iters_large,
            warmup_large: 1,
            ..BenchOptions::default()
        }
    }
}

/// A regenerated figure: labelled series plus free-form notes.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Experiment id ("fig5" … "fig18").
    pub id: &'static str,
    /// Human title echoing the paper's caption.
    pub title: &'static str,
    /// Metric unit of every series.
    pub unit: &'static str,
    /// Measured series.
    pub series: Vec<Series>,
    /// Notes (e.g. series the library cannot produce).
    pub notes: Vec<String>,
}

fn intra() -> Topology {
    Topology::single_node(2)
}

fn inter() -> Topology {
    Topology::new(2, 1)
}

/// All figure ids, in paper order.
pub fn all_figure_ids() -> &'static [&'static str] {
    &[
        "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
        "fig15", "fig16", "fig17", "fig18",
    ]
}

/// Run the four library×API series of one benchmark; unsupported
/// combinations produce a note instead of a series.
fn four_series(
    benchmark: Benchmark,
    topo: Topology,
    opts: BenchOptions,
    notes: &mut Vec<String>,
) -> Vec<Series> {
    let mut out = Vec::new();
    for lib in [Library::Mvapich2J, Library::OpenMpiJ] {
        for api in [Api::Buffer, Api::Arrays] {
            match run(RunSpec {
                library: lib,
                benchmark,
                api,
                topo,
                opts,
                faults: None,
                engine: EngineMode::Threaded,
            }) {
                Some(s) => out.push(s),
                None => notes.push(format!(
                    "{} does not support the {} API with {} — series omitted, as in the paper",
                    lib.label(),
                    api.label(),
                    benchmark.name()
                )),
            }
        }
    }
    out
}

/// Regenerate one figure by id.
pub fn run_figure(id: &str, scale: Scale) -> Figure {
    let sw = Sweep::of(scale);
    let mut notes = Vec::new();
    match id {
        "fig5" => {
            let series = four_series(
                Benchmark::Latency,
                intra(),
                sw.opts(sw.p2p_small),
                &mut notes,
            );
            Figure {
                id: "fig5",
                title: "Intra-node latency, small messages",
                unit: "us",
                series,
                notes,
            }
        }
        "fig6" => {
            let series = four_series(
                Benchmark::Latency,
                intra(),
                sw.opts(sw.p2p_large),
                &mut notes,
            );
            Figure {
                id: "fig6",
                title: "Intra-node latency, large messages",
                unit: "us",
                series,
                notes,
            }
        }
        "fig7" => {
            let series = four_series(
                Benchmark::Bandwidth,
                intra(),
                sw.opts(sw.bw_small),
                &mut notes,
            );
            Figure {
                id: "fig7",
                title: "Intra-node bandwidth, small messages",
                unit: "MB/s",
                series,
                notes,
            }
        }
        "fig8" => {
            let series = four_series(
                Benchmark::Bandwidth,
                intra(),
                sw.opts(sw.bw_large),
                &mut notes,
            );
            Figure {
                id: "fig8",
                title: "Intra-node bandwidth, large messages",
                unit: "MB/s",
                series,
                notes,
            }
        }
        "fig9" => {
            let series = four_series(
                Benchmark::Latency,
                inter(),
                sw.opts(sw.p2p_small),
                &mut notes,
            );
            Figure {
                id: "fig9",
                title: "Inter-node latency, small messages",
                unit: "us",
                series,
                notes,
            }
        }
        "fig10" => {
            let series = four_series(
                Benchmark::Latency,
                inter(),
                sw.opts(sw.p2p_large),
                &mut notes,
            );
            Figure {
                id: "fig10",
                title: "Inter-node latency, large messages",
                unit: "us",
                series,
                notes,
            }
        }
        "fig11" => {
            // Java-vs-native overhead for direct ByteBuffers, inter-node.
            let opts = sw.opts(sw.p2p_small);
            let mut series = Vec::new();
            for (lib, profile) in [
                (Library::Mvapich2J, Profile::mvapich2()),
                (Library::OpenMpiJ, Profile::openmpi_ucx()),
            ] {
                let java = run(RunSpec {
                    library: lib,
                    benchmark: Benchmark::Latency,
                    api: Api::Buffer,
                    topo: inter(),
                    opts,
                    faults: None,
                    engine: EngineMode::Threaded,
                })
                .expect("buffer latency always supported");
                let native = native_latency(inter(), profile, &opts);
                let points = java
                    .points
                    .iter()
                    .zip(native.iter())
                    .map(|(j, n)| {
                        debug_assert_eq!(j.size, n.size);
                        SizeValue {
                            size: j.size,
                            value: (j.value - n.value).max(0.0),
                        }
                    })
                    .collect();
                series.push(Series {
                    label: format!("{} overhead vs native", lib.label()),
                    benchmark: "osu_latency",
                    unit: "us",
                    points,
                    pool: None,
                    overlap: None,
                });
            }
            Figure {
                id: "fig11",
                title: "Inter-node latency overhead: Java bindings vs native (direct ByteBuffers)",
                unit: "us",
                series,
                notes,
            }
        }
        "fig12" => {
            let series = four_series(
                Benchmark::Bandwidth,
                inter(),
                sw.opts(sw.bw_small),
                &mut notes,
            );
            Figure {
                id: "fig12",
                title: "Inter-node bandwidth, small messages",
                unit: "MB/s",
                series,
                notes,
            }
        }
        "fig13" => {
            let series = four_series(
                Benchmark::Bandwidth,
                inter(),
                sw.opts(sw.bw_large),
                &mut notes,
            );
            Figure {
                id: "fig13",
                title: "Inter-node bandwidth, large messages",
                unit: "MB/s",
                series,
                notes,
            }
        }
        "fig14" => {
            let series = four_series(
                Benchmark::Collective(CollOp::Bcast),
                sw.coll_topo,
                sw.opts(sw.coll_small),
                &mut notes,
            );
            Figure {
                id: "fig14",
                title: "Broadcast latency, small messages (4x16)",
                unit: "us",
                series,
                notes,
            }
        }
        "fig15" => {
            let series = four_series(
                Benchmark::Collective(CollOp::Bcast),
                sw.coll_topo,
                sw.opts(sw.coll_large),
                &mut notes,
            );
            Figure {
                id: "fig15",
                title: "Broadcast latency, large messages (4x16)",
                unit: "us",
                series,
                notes,
            }
        }
        "fig16" => {
            let series = four_series(
                Benchmark::Collective(CollOp::Allreduce),
                sw.coll_topo,
                sw.opts(sw.coll_small),
                &mut notes,
            );
            Figure {
                id: "fig16",
                title: "Allreduce latency, small messages (4x16)",
                unit: "us",
                series,
                notes,
            }
        }
        "fig17" => {
            let series = four_series(
                Benchmark::Collective(CollOp::Allreduce),
                sw.coll_topo,
                sw.opts(sw.coll_large),
                &mut notes,
            );
            Figure {
                id: "fig17",
                title: "Allreduce latency, large messages (4x16)",
                unit: "us",
                series,
                notes,
            }
        }
        "fig18" => {
            // Validation experiment: MVAPICH2-J only, full size sweep.
            let mut opts = sw.opts((sw.p2p_small.0, sw.p2p_large.1));
            opts.validate = true;
            let mut series = Vec::new();
            for api in [Api::Buffer, Api::Arrays] {
                let (s, report) = run_with_obs(
                    RunSpec {
                        library: Library::Mvapich2J,
                        benchmark: Benchmark::Latency,
                        api,
                        topo: inter(),
                        opts,
                        faults: None,
                        engine: EngineMode::Threaded,
                    },
                    obs_opts(),
                );
                series.push(s.expect("latency always supported"));
                // With `--trace` on, decompose each series: where does the
                // wall time of the boundary-heavy arrays path actually go?
                if TRACE_FIGURES.load(Ordering::SeqCst) {
                    let a = obs::analyze::analyze(&report);
                    notes.push(format!(
                        "{}: copy+staging+gc = {:.1}% of virtual wall time \
                         (fabric {:.1}%, wait {:.1}%)",
                        api.label(),
                        a.boundary_share_pct(),
                        a.category_share_pct("fabric"),
                        a.category_share_pct("wait"),
                    ));
                }
            }
            Figure {
                id: "fig18",
                title:
                    "Inter-node latency with data validation: ByteBuffers vs arrays (MVAPICH2-J)",
                unit: "us",
                series,
                notes,
            }
        }
        other => panic!("unknown figure id {other}"),
    }
}

/// The headline numbers the paper quotes, computed from regenerated
/// figures.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Fig 5: OMPI-J buffer / MV2-J buffer small intra-node latency
    /// (paper: 2.46×).
    pub intra_small_buffer_ratio: f64,
    /// Figs 14+15: bcast, OMPI-J / MV2-J, buffers (paper: 6.2×).
    pub bcast_buffer_ratio: f64,
    /// Figs 14+15: bcast, arrays (paper: 2.2×).
    pub bcast_arrays_ratio: f64,
    /// Figs 16+17: allreduce, buffers (paper: 2.76×).
    pub allreduce_buffer_ratio: f64,
    /// Figs 16+17: allreduce, arrays (paper: 1.62×).
    pub allreduce_arrays_ratio: f64,
    /// Fig 18: first size at which arrays beat buffers (paper: past 256 B).
    pub validate_crossover: Option<usize>,
    /// Fig 18: buffer/array latency ratio at the largest size (paper: ~3×
    /// at 4 MB).
    pub validate_ratio_at_max: f64,
    /// Fig 11: mean Java-over-native overhead in µs, per library
    /// (paper: "ballpark of 1 µs", MVAPICH2-J smaller).
    pub overhead_mv2j_us: f64,
    pub overhead_ompij_us: f64,
    /// Buffering-layer pool counters summed over every rank-0 series the
    /// summary figures produced (hits come from the arrays API; buffer
    /// series contribute zeros).
    pub pool: mpjbuf::PoolStats,
}

/// Sum rank-0 pool counters across all series of the given figures.
fn aggregate_pool(figs: &[&Figure]) -> mpjbuf::PoolStats {
    let mut total = mpjbuf::PoolStats::default();
    for f in figs {
        for s in &f.series {
            if let Some(p) = s.pool {
                total.hits += p.hits;
                total.misses += p.misses;
                total.releases += p.releases;
                total.outstanding += p.outstanding;
                total.pooled_bytes += p.pooled_bytes;
                total.fallback_allocs += p.fallback_allocs;
            }
        }
    }
    total
}

fn find<'a>(figure: &'a Figure, label_contains: &str) -> &'a [SizeValue] {
    figure
        .series
        .iter()
        .find(|s| s.label.contains(label_contains))
        .map(|s| s.points.as_slice())
        .unwrap_or(&[])
}

/// Compute the headline summary from regenerated figures (runs the
/// needed figures at the given scale).
pub fn headline_summary(scale: Scale) -> Summary {
    let fig5 = run_figure("fig5", scale);
    let fig11 = run_figure("fig11", scale);
    let fig14 = run_figure("fig14", scale);
    let fig15 = run_figure("fig15", scale);
    let fig16 = run_figure("fig16", scale);
    let fig17 = run_figure("fig17", scale);
    let fig18 = run_figure("fig18", scale);
    summary_from(&fig5, &fig11, &fig14, &fig15, &fig16, &fig17, &fig18)
}

/// Compute the summary from already-regenerated figures.
pub fn summary_from(
    fig5: &Figure,
    fig11: &Figure,
    fig14: &Figure,
    fig15: &Figure,
    fig16: &Figure,
    fig17: &Figure,
    fig18: &Figure,
) -> Summary {
    let ratio_over = |a: &Figure, b: &Figure, lib_a: &str, lib_b: &str, api: &str| {
        let mut num: Vec<SizeValue> = Vec::new();
        let mut den: Vec<SizeValue> = Vec::new();
        for f in [a, b] {
            num.extend_from_slice(find(f, &format!("{lib_a} {api}")));
            den.extend_from_slice(find(f, &format!("{lib_b} {api}")));
        }
        mean_ratio(&num, &den)
    };

    let bcast_buffer_ratio = ratio_over(fig14, fig15, "Open MPI-J", "MVAPICH2-J", "buffer");
    let bcast_arrays_ratio = ratio_over(fig14, fig15, "Open MPI-J", "MVAPICH2-J", "arrays");
    let allreduce_buffer_ratio = ratio_over(fig16, fig17, "Open MPI-J", "MVAPICH2-J", "buffer");
    let allreduce_arrays_ratio = ratio_over(fig16, fig17, "Open MPI-J", "MVAPICH2-J", "arrays");

    let intra_small_buffer_ratio = mean_ratio(
        find(fig5, "Open MPI-J buffer"),
        find(fig5, "MVAPICH2-J buffer"),
    );

    let buf18 = find(fig18, "buffer");
    let arr18 = find(fig18, "arrays");
    let validate_crossover = buf18
        .iter()
        .zip(arr18.iter())
        .find(|(b, a)| a.value < b.value)
        .map(|(b, _)| b.size);
    let validate_ratio_at_max = match (buf18.last(), arr18.last()) {
        (Some(b), Some(a)) if a.value > 0.0 => b.value / a.value,
        _ => f64::NAN,
    };

    let mean = |pts: &[SizeValue]| {
        if pts.is_empty() {
            f64::NAN
        } else {
            pts.iter().map(|p| p.value).sum::<f64>() / pts.len() as f64
        }
    };
    let overhead_mv2j_us = mean(find(fig11, "MVAPICH2-J overhead"));
    let overhead_ompij_us = mean(find(fig11, "Open MPI-J overhead"));

    Summary {
        intra_small_buffer_ratio,
        bcast_buffer_ratio,
        bcast_arrays_ratio,
        allreduce_buffer_ratio,
        allreduce_arrays_ratio,
        validate_crossover,
        validate_ratio_at_max,
        overhead_mv2j_us,
        overhead_ompij_us,
        pool: aggregate_pool(&[fig5, fig11, fig14, fig15, fig16, fig17, fig18]),
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "headline summary (paper value in parentheses):")?;
        writeln!(
            f,
            "  intra-node small latency, OMPI-J/MV2-J buffers : {:5.2}x  (2.46x)",
            self.intra_small_buffer_ratio
        )?;
        writeln!(
            f,
            "  bcast latency, OMPI-J/MV2-J, buffers           : {:5.2}x  (6.2x)",
            self.bcast_buffer_ratio
        )?;
        writeln!(
            f,
            "  bcast latency, OMPI-J/MV2-J, arrays            : {:5.2}x  (2.2x)",
            self.bcast_arrays_ratio
        )?;
        writeln!(
            f,
            "  allreduce latency, OMPI-J/MV2-J, buffers       : {:5.2}x  (2.76x)",
            self.allreduce_buffer_ratio
        )?;
        writeln!(
            f,
            "  allreduce latency, OMPI-J/MV2-J, arrays        : {:5.2}x  (1.62x)",
            self.allreduce_arrays_ratio
        )?;
        writeln!(
            f,
            "  validation crossover (arrays win past)         : {}  (256 B)",
            self.validate_crossover
                .map(|s| format!("{s} B"))
                .unwrap_or_else(|| "none".into())
        )?;
        writeln!(
            f,
            "  validation buffer/array ratio at max size      : {:5.2}x  (~3x at 4 MB)",
            self.validate_ratio_at_max
        )?;
        writeln!(
            f,
            "  Java-vs-native overhead MVAPICH2-J             : {:5.2} us (~1 us ballpark)",
            self.overhead_mv2j_us
        )?;
        writeln!(
            f,
            "  Java-vs-native overhead Open MPI-J             : {:5.2} us (larger than MVAPICH2-J)",
            self.overhead_ompij_us
        )?;
        let p = self.pool;
        let served = p.hits + p.misses;
        let hit_rate = if served > 0 {
            100.0 * p.hits as f64 / served as f64
        } else {
            0.0
        };
        writeln!(
            f,
            "  buffering-layer pool (rank 0, array series)    : hits={} misses={} hit-rate={:.1}%",
            p.hits, p.misses, hit_rate
        )
    }
}
