//! The perf-trajectory basket: a fixed set of workloads profiled with
//! `obs::wallprof` whose *wall-clock* throughput is tracked across PRs
//! as schema-versioned `BENCH_<n>.json` files (one per PR, uploaded by
//! CI and gated against the committed baseline).
//!
//! The virtual-time results of these workloads are deterministic and
//! covered by tests; this module watches the other axis — how fast the
//! simulator itself runs them — so raw-speed work (ROADMAP items 1–2)
//! has a standing, machine-readable benchmark to move against.

use obs::json::{self, JsonBuf, JsonValue};
use obs::wallprof::SimPerf;
use ombj::{run_with_obs, Api, BenchOptions, Benchmark, CollOp, Library, NbOp, RunSpec};
use simfabric::{EngineMode, FaultPlan, Topology};

/// Schema version of `BENCH_*.json`; bump on any structural change.
/// v2: `sim_perf` blocks carry an `engine` key and the basket gained
/// the event-engine rows (`bcast_8_event`, `bcast_1k_event`).
pub const SCHEMA_VERSION: u64 = 2;

/// Regression-gate threshold: the soft gate fails when total events/sec
/// drops by more than this share versus the committed baseline.
pub const DEFAULT_GATE_PCT: f64 = 25.0;

/// One basket workload.
pub struct BasketEntry {
    pub name: &'static str,
    pub spec: RunSpec,
    /// Observability configuration the workload is profiled under. Most
    /// entries run with everything off (the disabled fast path the gate
    /// is pricing); the `obs_on`/`obs_off` pair runs one identical
    /// workload both ways so the cost of full instrumentation is a
    /// standing, tracked number instead of a claim.
    pub obs: obs::ObsOptions,
}

/// One profiled basket run.
pub struct BasketResult {
    pub name: &'static str,
    pub ranks: usize,
    pub perf: SimPerf,
}

fn opts(max_size: usize, quick: bool) -> BenchOptions {
    BenchOptions {
        max_size: if quick {
            max_size.min(1 << 10)
        } else {
            max_size
        },
        ..BenchOptions::quick()
    }
}

/// The fixed workload basket: pt2pt latency/bw, small- and large-comm
/// collectives (2–64 ranks), one NBC overlap run, two one-sided (RMA)
/// runs, one lossy-fabric run, an `obs_off`/`obs_on` pair (the same
/// latency workload with instrumentation off and fully on — tracing,
/// flight ring, telemetry) tracking the cost of observability itself,
/// and two event-engine rows: `bcast_8_event` (the `bcast_8` workload
/// under the cooperative scheduler, so the engines' events/sec are
/// directly comparable) and `bcast_1k_event` (a 1024-rank bcast that
/// only the event engine can host in one process). `quick` shrinks
/// sizes and the large topologies for tests.
pub fn basket(quick: bool) -> Vec<BasketEntry> {
    let spec = |benchmark, topo, opts| RunSpec {
        library: Library::Mvapich2J,
        benchmark,
        api: Api::Buffer,
        topo,
        opts,
        faults: None,
        engine: EngineMode::Threaded,
    };
    let plain = obs::ObsOptions::profiled();
    let big = if quick {
        Topology::new(2, 4)
    } else {
        Topology::new(4, 16)
    };
    let mut lossy = spec(
        Benchmark::Latency,
        Topology::new(2, 1),
        opts(1 << 14, quick),
    );
    let mut plan = FaultPlan::parse("drop=0.02,corrupt=0.001,dup=0.005,jitter=200")
        .expect("static fault spec parses");
    plan.seed = 42;
    lossy.faults = Some(plan);
    let mut bcast_8_event = spec(
        Benchmark::Collective(CollOp::Bcast),
        Topology::new(2, 4),
        opts(1 << 14, quick),
    );
    bcast_8_event.engine = EngineMode::EventDriven;
    let mut bcast_1k_event = spec(
        Benchmark::Collective(CollOp::Bcast),
        if quick {
            Topology::new(4, 8)
        } else {
            Topology::new(16, 64)
        },
        opts(1 << 10, quick),
    );
    bcast_1k_event.engine = EngineMode::EventDriven;
    vec![
        BasketEntry {
            name: "pt2pt_latency",
            spec: spec(
                Benchmark::Latency,
                Topology::new(2, 1),
                opts(1 << 17, quick),
            ),
            obs: plain,
        },
        BasketEntry {
            name: "pt2pt_bw",
            spec: spec(
                Benchmark::Bandwidth,
                Topology::new(2, 1),
                opts(1 << 17, quick),
            ),
            obs: plain,
        },
        BasketEntry {
            name: "bcast_8",
            spec: spec(
                Benchmark::Collective(CollOp::Bcast),
                Topology::new(2, 4),
                opts(1 << 14, quick),
            ),
            obs: plain,
        },
        BasketEntry {
            name: "allreduce_64",
            spec: spec(
                Benchmark::Collective(CollOp::Allreduce),
                big,
                opts(1 << 12, quick),
            ),
            obs: plain,
        },
        BasketEntry {
            name: "ibcast_overlap",
            spec: spec(
                Benchmark::NonBlocking {
                    op: NbOp::Ibcast,
                    overlap: true,
                },
                Topology::new(2, 2),
                opts(1 << 14, quick),
            ),
            obs: plain,
        },
        BasketEntry {
            name: "rma_put_latency",
            spec: spec(
                Benchmark::PutLatency,
                Topology::new(2, 1),
                opts(1 << 16, quick),
            ),
            obs: plain,
        },
        BasketEntry {
            name: "rma_get_bw",
            spec: spec(
                Benchmark::GetBandwidth,
                Topology::new(2, 1),
                opts(1 << 16, quick),
            ),
            obs: plain,
        },
        BasketEntry {
            name: "lossy_latency",
            spec: lossy,
            obs: plain,
        },
        BasketEntry {
            name: "obs_off_latency",
            spec: spec(
                Benchmark::Latency,
                Topology::new(2, 1),
                opts(1 << 14, quick),
            ),
            obs: plain,
        },
        BasketEntry {
            name: "obs_on_latency",
            spec: spec(
                Benchmark::Latency,
                Topology::new(2, 1),
                opts(1 << 14, quick),
            ),
            obs: obs::ObsOptions {
                tracing: true,
                profiling: true,
                ..Default::default()
            }
            .with_flight()
            .with_telemetry(0.0),
        },
        BasketEntry {
            name: "bcast_8_event",
            spec: bcast_8_event,
            obs: plain,
        },
        BasketEntry {
            name: "bcast_1k_event",
            spec: bcast_1k_event,
            obs: plain,
        },
    ]
}

/// Run every basket workload with profiling on and collect its
/// `SimPerf`. Panics if a workload fails to produce a series or a
/// profile — the basket is fixed and must always run.
pub fn run_basket(quick: bool) -> Vec<BasketResult> {
    basket(quick)
        .into_iter()
        .map(|e| {
            let ranks = e.spec.topo.size();
            let (series, report) = run_with_obs(e.spec, e.obs);
            series.unwrap_or_else(|| panic!("basket workload {} did not run", e.name));
            let perf = report
                .sim_perf
                .unwrap_or_else(|| panic!("basket workload {} produced no SimPerf", e.name));
            BasketResult {
                name: e.name,
                ranks,
                perf,
            }
        })
        .collect()
}

/// Aggregate metrics across the basket (events and wall time sum; the
/// headline rates are re-derived from the sums).
pub struct Totals {
    pub wall_ns: u64,
    pub virtual_ns: f64,
    pub events: u64,
    pub allocs: u64,
    pub messages: u64,
}

impl Totals {
    pub fn of(results: &[BasketResult]) -> Totals {
        let mut t = Totals {
            wall_ns: 0,
            virtual_ns: 0.0,
            events: 0,
            allocs: 0,
            messages: 0,
        };
        for r in results {
            let c = r.perf.totals();
            t.wall_ns += r.perf.wall_ns;
            t.virtual_ns += r.perf.virtual_ns;
            t.events += r.perf.events();
            t.allocs += c.counter(obs::wallprof::Counter::Allocs);
            t.messages += c.counter(obs::wallprof::Counter::Messages);
        }
        t
    }

    pub fn events_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.events as f64 / (self.wall_ns as f64 / 1e9)
    }

    pub fn vns_per_ws(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.virtual_ns / (self.wall_ns as f64 / 1e9)
    }

    pub fn alloc_per_msg(&self) -> f64 {
        if self.messages == 0 {
            return 0.0;
        }
        self.allocs as f64 / self.messages as f64
    }
}

/// Serialize basket results as a `BENCH_*.json` document.
pub fn bench_json(results: &[BasketResult], commit: &str, pr: u64, quick: bool) -> String {
    let t = Totals::of(results);
    let mut w = JsonBuf::new();
    w.begin_obj();
    w.key("schema_version");
    w.uint_val(SCHEMA_VERSION);
    w.key("kind");
    w.str_val("sim-perf-trajectory");
    w.key("pr");
    w.uint_val(pr);
    w.key("commit");
    w.str_val(commit);
    w.key("quick");
    w.bool_val(quick);
    w.key("totals");
    w.begin_obj();
    w.key("wall_ms");
    w.num_val(t.wall_ns as f64 / 1e6);
    w.key("virtual_ms");
    w.num_val(t.virtual_ns / 1e6);
    w.key("events");
    w.uint_val(t.events);
    w.key("events_per_sec");
    w.num_val(t.events_per_sec());
    w.key("vns_per_ws");
    w.num_val(t.vns_per_ws());
    w.key("alloc_per_msg");
    w.num_val(t.alloc_per_msg());
    w.end_obj();
    w.key("basket");
    w.begin_arr();
    for r in results {
        w.newline();
        w.begin_obj();
        w.key("name");
        w.str_val(r.name);
        w.key("ranks");
        w.uint_val(r.ranks as u64);
        w.key("sim_perf");
        r.perf.write_json(&mut w);
        w.end_obj();
    }
    w.newline();
    w.end_arr();
    w.end_obj();
    w.newline();
    w.finish()
}

/// The one-line job-log summary for a serialized `BENCH_*.json`.
pub fn summary_line(doc: &JsonValue) -> String {
    let totals = doc.get("totals");
    let f = |k: &str| {
        totals
            .and_then(|t| t.get(k))
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0)
    };
    format!(
        "perf-trajectory: {:.0} events/sec, {:.3e} vns/ws, {:.2} alloc/msg ({:.0} ms wall)",
        f("events_per_sec"),
        f("vns_per_ws"),
        f("alloc_per_msg"),
        f("wall_ms"),
    )
}

/// Soft regression gate: compare the freshly measured document against
/// the committed baseline. Returns `Ok(report_lines)` when within the
/// gate, `Err(report_lines)` when total events/sec dropped by more than
/// `gate_pct`. Mode mismatches (quick vs full) skip the gate.
pub fn compare_baseline(
    current: &JsonValue,
    baseline: &JsonValue,
    gate_pct: f64,
) -> Result<Vec<String>, Vec<String>> {
    let mut lines = Vec::new();
    let quick = |d: &JsonValue| d.get("quick").and_then(|v| v.as_bool()).unwrap_or(false);
    if quick(current) != quick(baseline) {
        lines.push("gate skipped: current and baseline ran different basket modes".into());
        return Ok(lines);
    }
    let eps = |d: &JsonValue| {
        d.get("totals")
            .and_then(|t| t.get("events_per_sec"))
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0)
    };
    let (cur, base) = (eps(current), eps(baseline));
    // Per-entry context (informational — machines differ; only the
    // total is gated).
    if let (Some(cb), Some(bb)) = (
        current.get("basket").and_then(|b| b.as_arr()),
        baseline.get("basket").and_then(|b| b.as_arr()),
    ) {
        for c in cb {
            let name = c.get("name").and_then(|n| n.as_str()).unwrap_or("?");
            let entry_eps = |e: &JsonValue| {
                e.get("sim_perf")
                    .and_then(|p| p.get("events_per_sec"))
                    .and_then(|v| v.as_f64())
            };
            let b = bb
                .iter()
                .find(|e| e.get("name").and_then(|n| n.as_str()) == Some(name));
            match (entry_eps(c), b.and_then(entry_eps)) {
                (Some(c_eps), Some(b_eps)) if b_eps > 0.0 => lines.push(format!(
                    "  {name:<16} {c_eps:>12.0} ev/s (baseline {b_eps:.0}, {:+.1}%)",
                    100.0 * (c_eps - b_eps) / b_eps
                )),
                _ => lines.push(format!("  {name:<16} no baseline entry")),
            }
        }
    }
    if base <= 0.0 {
        lines.push("gate skipped: baseline has no total events/sec".into());
        return Ok(lines);
    }
    let delta_pct = 100.0 * (cur - base) / base;
    lines.push(format!(
        "total events/sec: {cur:.0} vs baseline {base:.0} ({delta_pct:+.1}%, gate -{gate_pct:.0}%)"
    ));
    if delta_pct < -gate_pct {
        Err(lines)
    } else {
        Ok(lines)
    }
}

/// Parse a `BENCH_*.json` text (thin wrapper so callers need no direct
/// `obs::json` import).
pub fn parse_bench(text: &str) -> Result<JsonValue, String> {
    json::parse(text)
}

/// Best-effort commit id for the `commit` field: `GITHUB_SHA`, else
/// `git rev-parse --short HEAD`, else `"unknown"`.
pub fn commit_id() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        if !sha.is_empty() {
            return sha;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}
