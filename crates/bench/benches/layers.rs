//! Criterion micro-benches of the substrate layers: how fast does the
//! *simulator* execute managed-heap operations, staging copies, GC, and
//! datatype packing? These guard the real-time cost of the reproduction
//! (virtual-time results are deterministic and covered by tests).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mpisim::datatype::{Datatype, INT};
use mrt::Runtime;
use std::hint::black_box;
use vtime::{Clock, CostModel};

fn bench_heap(c: &mut Criterion) {
    let mut g = c.benchmark_group("mrt_heap");
    g.bench_function("alloc_release_1k", |b| {
        let mut rt = Runtime::new(CostModel::default());
        let mut clock = Clock::new();
        b.iter(|| {
            let a = rt.alloc_array::<i8>(1024, &mut clock).unwrap();
            rt.release_array(a).unwrap();
        })
    });
    g.bench_function("gc_64k_live", |b| {
        let mut rt = Runtime::with_heap(CostModel::default(), 1 << 20, 1 << 22);
        let mut clock = Clock::new();
        let _live: Vec<_> = (0..64)
            .map(|_| rt.alloc_array::<i8>(1024, &mut clock).unwrap())
            .collect();
        b.iter(|| rt.gc(&mut clock))
    });
    g.finish();
}

fn bench_staging(c: &mut Criterion) {
    let mut g = c.benchmark_group("mpjbuf_staging");
    let n = 64 << 10;
    g.throughput(Throughput::Bytes(n as u64));
    g.bench_function("stage_unstage_64k", |b| {
        let mut rt = Runtime::new(CostModel::default());
        let mut clock = Clock::new();
        let mut pool = mpjbuf::BufferPool::new();
        let arr = rt.alloc_array::<i8>(n, &mut clock).unwrap();
        b.iter(|| {
            let mut buf = mpjbuf::Buffer::from_pool(&mut pool, &mut rt, &mut clock, n);
            buf.stage_array(&mut rt, &mut clock, arr, 0, n).unwrap();
            buf.commit();
            buf.unstage_array(&mut rt, &mut clock, arr, 0, n).unwrap();
            buf.free(&mut pool, &mut rt, &mut clock);
        })
    });
    g.finish();
}

fn bench_datatype(c: &mut Criterion) {
    let mut g = c.benchmark_group("mpisim_datatype");
    let dt = Datatype::vector(64, 4, 8, INT).unwrap();
    let src = vec![7u8; dt.span(16)];
    g.throughput(Throughput::Bytes((dt.size() * 16) as u64));
    g.bench_function("pack_vector_16", |b| {
        b.iter(|| black_box(dt.pack(black_box(&src), 16).unwrap()))
    });
    let packed = dt.pack(&src, 16).unwrap();
    let mut dst = vec![0u8; src.len()];
    g.bench_function("unpack_vector_16", |b| {
        b.iter(|| dt.unpack(black_box(&packed), 16, black_box(&mut dst)).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_heap, bench_staging, bench_datatype);
criterion_main!(benches);
