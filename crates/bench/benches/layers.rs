//! Wall-clock micro-benches of the substrate layers: how fast does the
//! *simulator* execute managed-heap operations, staging copies, GC, and
//! datatype packing? These guard the real-time cost of the reproduction
//! (virtual-time results are deterministic and covered by tests).
//!
//! Harness-free (`harness = false`): plain timing loops, run via
//! `cargo bench` (no-op without the `--bench` flag cargo passes).

use mpisim::datatype::{Datatype, INT};
use mrt::Runtime;
use std::hint::black_box;
use vtime::{Clock, CostModel};

fn time<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) {
    let t0 = std::time::Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let per_us = t0.elapsed().as_secs_f64() * 1e6 / iters as f64;
    println!("{name:<48} {per_us:>10.3} us/iter");
}

fn bench_heap() {
    {
        let mut rt = Runtime::new(CostModel::default());
        let mut clock = Clock::new();
        time("mrt_heap/alloc_release_1k", 10_000, || {
            let a = rt.alloc_array::<i8>(1024, &mut clock).unwrap();
            rt.release_array(a).unwrap();
        });
    }
    {
        let mut rt = Runtime::with_heap(CostModel::default(), 1 << 20, 1 << 22);
        let mut clock = Clock::new();
        let _live: Vec<_> = (0..64)
            .map(|_| rt.alloc_array::<i8>(1024, &mut clock).unwrap())
            .collect();
        time("mrt_heap/gc_64k_live", 1_000, || rt.gc(&mut clock));
    }
}

fn bench_staging() {
    let n = 64 << 10;
    let mut rt = Runtime::new(CostModel::default());
    let mut clock = Clock::new();
    let mut pool = mpjbuf::BufferPool::new();
    let arr = rt.alloc_array::<i8>(n, &mut clock).unwrap();
    time("mpjbuf_staging/stage_unstage_64k", 1_000, || {
        let mut buf = mpjbuf::Buffer::from_pool(&mut pool, &mut rt, &mut clock, n);
        buf.stage_array(&mut rt, &mut clock, arr, 0, n).unwrap();
        buf.commit();
        buf.unstage_array(&mut rt, &mut clock, arr, 0, n).unwrap();
        buf.free(&mut pool, &mut rt, &mut clock);
    });
}

fn bench_datatype() {
    let dt = Datatype::vector(64, 4, 8, INT).unwrap();
    let src = vec![7u8; dt.span(16)];
    time("mpisim_datatype/pack_vector_16", 10_000, || {
        black_box(dt.pack(black_box(&src), 16).unwrap())
    });
    let packed = dt.pack(&src, 16).unwrap();
    let mut dst = vec![0u8; src.len()];
    time("mpisim_datatype/unpack_vector_16", 10_000, || {
        dt.unpack(black_box(&packed), 16, black_box(&mut dst))
            .unwrap()
    });
}

fn main() {
    if !std::env::args().any(|a| a == "--bench") {
        return;
    }
    bench_heap();
    bench_staging();
    bench_datatype();
}
