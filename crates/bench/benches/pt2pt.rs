//! Wall-clock benches over the point-to-point figures (Figures 5–13):
//! each target regenerates one figure's workload at reduced iteration
//! counts and reports the wall-clock cost of the full simulation — a
//! regression guard for the simulator itself. Virtual-time results are
//! asserted non-empty so a silent benchmark break fails loudly.
//!
//! Harness-free (`harness = false`): plain timing loops, run via
//! `cargo bench` (no-op without the `--bench` flag cargo passes).

use ombj::{run, Api, BenchOptions, Benchmark, Library, RunSpec};
use simfabric::{EngineMode, Topology};

fn opts() -> BenchOptions {
    BenchOptions {
        min_size: 1,
        max_size: 4 << 10,
        iterations: 20,
        warmup: 2,
        iterations_large: 4,
        warmup_large: 1,
        ..BenchOptions::default()
    }
}

fn time<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) {
    let t0 = std::time::Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let per_ms = t0.elapsed().as_secs_f64() * 1e3 / iters as f64;
    println!("{name:<48} {per_ms:>10.3} ms/iter");
}

fn bench_latency() {
    for (name, topo) in [
        ("intra", Topology::single_node(2)),
        ("inter", Topology::new(2, 1)),
    ] {
        for (api, alabel) in [(Api::Buffer, "buffer"), (Api::Arrays, "arrays")] {
            time(&format!("fig5_fig9_latency/{name}/{alabel}"), 10, || {
                let s = run(RunSpec {
                    library: Library::Mvapich2J,
                    benchmark: Benchmark::Latency,
                    api,
                    topo,
                    opts: opts(),
                    faults: None,
                    engine: EngineMode::Threaded,
                })
                .expect("latency runs");
                assert!(!s.points.is_empty());
                s
            });
        }
    }
}

fn bench_bandwidth() {
    for (name, lib) in [
        ("mvapich2j", Library::Mvapich2J),
        ("openmpij", Library::OpenMpiJ),
    ] {
        time(
            &format!("fig7_fig12_bandwidth/bw_buffer/{name}"),
            10,
            || {
                run(RunSpec {
                    library: lib,
                    benchmark: Benchmark::Bandwidth,
                    api: Api::Buffer,
                    topo: Topology::new(2, 1),
                    opts: opts(),
                    faults: None,
                    engine: EngineMode::Threaded,
                })
                .expect("bw runs")
            },
        );
    }
}

fn bench_validation_mode() {
    // Figure 18's workload.
    for (api, label) in [(Api::Buffer, "buffer"), (Api::Arrays, "arrays")] {
        time(&format!("fig18_validation/{label}"), 10, || {
            let o = BenchOptions {
                validate: true,
                ..opts()
            };
            run(RunSpec {
                library: Library::Mvapich2J,
                benchmark: Benchmark::Latency,
                api,
                topo: Topology::new(2, 1),
                opts: o,
                faults: None,
                engine: EngineMode::Threaded,
            })
            .expect("validated latency runs")
        });
    }
}

fn main() {
    // `cargo bench` invokes bench targets with `--bench`; anything else
    // (plain builds, test sweeps) should not pay for the timing loops.
    if !std::env::args().any(|a| a == "--bench") {
        return;
    }
    bench_latency();
    bench_bandwidth();
    bench_validation_mode();
}
