//! Criterion benches over the point-to-point figures (Figures 5–13):
//! each target regenerates one figure's workload at reduced iteration
//! counts and reports the wall-clock cost of the full simulation — a
//! regression guard for the simulator itself. Virtual-time results are
//! asserted non-empty so a silent benchmark break fails loudly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ombj::{run, Api, BenchOptions, Benchmark, Library, RunSpec};
use simfabric::Topology;

fn opts() -> BenchOptions {
    BenchOptions {
        min_size: 1,
        max_size: 4 << 10,
        iterations: 20,
        warmup: 2,
        iterations_large: 4,
        warmup_large: 1,
        ..BenchOptions::default()
    }
}

fn bench_latency(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_fig9_latency");
    g.sample_size(10);
    for (name, topo) in [("intra", Topology::single_node(2)), ("inter", Topology::new(2, 1))] {
        for (api, alabel) in [(Api::Buffer, "buffer"), (Api::Arrays, "arrays")] {
            g.bench_with_input(
                BenchmarkId::new(name, alabel),
                &(topo, api),
                |b, &(topo, api)| {
                    b.iter(|| {
                        let s = run(RunSpec {
                            library: Library::Mvapich2J,
                            benchmark: Benchmark::Latency,
                            api,
                            topo,
                            opts: opts(),
                        })
                        .expect("latency runs");
                        assert!(!s.points.is_empty());
                        s
                    })
                },
            );
        }
    }
    g.finish();
}

fn bench_bandwidth(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_fig12_bandwidth");
    g.sample_size(10);
    for (name, lib) in [("mvapich2j", Library::Mvapich2J), ("openmpij", Library::OpenMpiJ)] {
        g.bench_function(BenchmarkId::new("bw_buffer", name), |b| {
            b.iter(|| {
                run(RunSpec {
                    library: lib,
                    benchmark: Benchmark::Bandwidth,
                    api: Api::Buffer,
                    topo: Topology::new(2, 1),
                    opts: opts(),
                })
                .expect("bw runs")
            })
        });
    }
    g.finish();
}

fn bench_validation_mode(c: &mut Criterion) {
    // Figure 18's workload.
    let mut g = c.benchmark_group("fig18_validation");
    g.sample_size(10);
    for (api, label) in [(Api::Buffer, "buffer"), (Api::Arrays, "arrays")] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let o = BenchOptions {
                    validate: true,
                    ..opts()
                };
                run(RunSpec {
                    library: Library::Mvapich2J,
                    benchmark: Benchmark::Latency,
                    api,
                    topo: Topology::new(2, 1),
                    opts: o,
                })
                .expect("validated latency runs")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_latency, bench_bandwidth, bench_validation_mode);
criterion_main!(benches);
