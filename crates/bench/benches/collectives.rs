//! Criterion benches over the collective figures (Figures 14–17) at
//! test scale (2×4 ranks), plus the vectored collectives the paper's
//! OMB-J supports.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ombj::{run, Api, BenchOptions, Benchmark, CollOp, Library, RunSpec};
use simfabric::Topology;

fn opts() -> BenchOptions {
    BenchOptions {
        min_size: 4,
        max_size: 1 << 10,
        iterations: 8,
        warmup: 1,
        iterations_large: 2,
        warmup_large: 1,
        ..BenchOptions::default()
    }
}

fn bench_figures_14_17(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig14_fig16_collectives");
    g.sample_size(10);
    for (op, oname) in [(CollOp::Bcast, "bcast"), (CollOp::Allreduce, "allreduce")] {
        for (lib, lname) in [(Library::Mvapich2J, "mvapich2j"), (Library::OpenMpiJ, "openmpij")] {
            g.bench_function(BenchmarkId::new(oname, lname), |b| {
                b.iter(|| {
                    run(RunSpec {
                        library: lib,
                        benchmark: Benchmark::Collective(op),
                        api: Api::Buffer,
                        topo: Topology::new(2, 4),
                        opts: opts(),
                    })
                    .expect("collective runs")
                })
            });
        }
    }
    g.finish();
}

fn bench_vectored(c: &mut Criterion) {
    let mut g = c.benchmark_group("vectored_collectives");
    g.sample_size(10);
    for (op, name) in [
        (CollOp::Allgatherv, "allgatherv"),
        (CollOp::Gatherv, "gatherv"),
        (CollOp::Scatterv, "scatterv"),
        (CollOp::Alltoallv, "alltoallv"),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                run(RunSpec {
                    library: Library::Mvapich2J,
                    benchmark: Benchmark::Collective(op),
                    api: Api::Arrays,
                    topo: Topology::new(2, 2),
                    opts: opts(),
                })
                .expect("vectored collective runs")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_figures_14_17, bench_vectored);
criterion_main!(benches);
