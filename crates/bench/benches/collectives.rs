//! Wall-clock benches over the collective figures (Figures 14–17) at
//! test scale (2×4 ranks), plus the vectored collectives the paper's
//! OMB-J supports.
//!
//! Harness-free (`harness = false`): plain timing loops, run via
//! `cargo bench` (no-op without the `--bench` flag cargo passes).

use ombj::{run, Api, BenchOptions, Benchmark, CollOp, Library, RunSpec};
use simfabric::{EngineMode, Topology};

fn opts() -> BenchOptions {
    BenchOptions {
        min_size: 4,
        max_size: 1 << 10,
        iterations: 8,
        warmup: 1,
        iterations_large: 2,
        warmup_large: 1,
        ..BenchOptions::default()
    }
}

fn time<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) {
    let t0 = std::time::Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let per_ms = t0.elapsed().as_secs_f64() * 1e3 / iters as f64;
    println!("{name:<48} {per_ms:>10.3} ms/iter");
}

fn bench_figures_14_17() {
    for (op, oname) in [(CollOp::Bcast, "bcast"), (CollOp::Allreduce, "allreduce")] {
        for (lib, lname) in [
            (Library::Mvapich2J, "mvapich2j"),
            (Library::OpenMpiJ, "openmpij"),
        ] {
            time(
                &format!("fig14_fig16_collectives/{oname}/{lname}"),
                10,
                || {
                    run(RunSpec {
                        library: lib,
                        benchmark: Benchmark::Collective(op),
                        api: Api::Buffer,
                        topo: Topology::new(2, 4),
                        opts: opts(),
                        faults: None,
                        engine: EngineMode::Threaded,
                    })
                    .expect("collective runs")
                },
            );
        }
    }
}

fn bench_vectored() {
    for (op, name) in [
        (CollOp::Allgatherv, "allgatherv"),
        (CollOp::Gatherv, "gatherv"),
        (CollOp::Scatterv, "scatterv"),
        (CollOp::Alltoallv, "alltoallv"),
    ] {
        time(&format!("vectored_collectives/{name}"), 10, || {
            run(RunSpec {
                library: Library::Mvapich2J,
                benchmark: Benchmark::Collective(op),
                api: Api::Arrays,
                topo: Topology::new(2, 2),
                opts: opts(),
                faults: None,
                engine: EngineMode::Threaded,
            })
            .expect("vectored collective runs")
        });
    }
}

fn main() {
    if !std::env::args().any(|a| a == "--bench") {
        return;
    }
    bench_figures_14_17();
    bench_vectored();
}
