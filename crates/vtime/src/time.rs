//! Virtual time value types and the per-rank clock.
//!
//! Time is represented as `f64` nanoseconds. All arithmetic in the
//! simulation is deterministic (no wall-clock reads), so `f64` rounding is
//! reproducible bit-for-bit across runs. Nanosecond floats keep the model
//! readable (cost constants are quoted in ns) while retaining sub-ns
//! resolution for per-byte costs.

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute point in virtual time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct VTime(f64);

/// A span of virtual time, in nanoseconds. May only be non-negative.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct VDur(f64);

impl VTime {
    /// Simulation epoch: `t = 0`.
    pub const ZERO: VTime = VTime(0.0);

    /// Construct from nanoseconds. Panics on negative or non-finite input.
    #[inline]
    pub fn from_nanos(ns: f64) -> Self {
        assert!(ns.is_finite() && ns >= 0.0, "invalid VTime: {ns}");
        VTime(ns)
    }

    /// Nanoseconds since the simulation epoch.
    #[inline]
    pub fn as_nanos(self) -> f64 {
        self.0
    }

    /// Microseconds since the simulation epoch (the unit OMB reports).
    #[inline]
    pub fn as_micros(self) -> f64 {
        self.0 / 1_000.0
    }

    /// Seconds since the simulation epoch (the unit `MPI_Wtime` reports).
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 / 1e9
    }

    /// The later of two instants — the fundamental merge operation of the
    /// virtual-time protocol (a receive merges the message arrival time
    /// into the local clock).
    #[inline]
    pub fn max(self, other: VTime) -> VTime {
        if other.0 > self.0 {
            other
        } else {
            self
        }
    }

    /// Time elapsed since `earlier`. Saturates at zero if `earlier` is in
    /// the future (callers comparing across ranks may legitimately observe
    /// skew before a barrier).
    #[inline]
    pub fn saturating_since(self, earlier: VTime) -> VDur {
        VDur((self.0 - earlier.0).max(0.0))
    }
}

impl VDur {
    /// Zero-length span.
    pub const ZERO: VDur = VDur(0.0);

    /// Construct from nanoseconds. Panics on negative or non-finite input.
    #[inline]
    pub fn from_nanos(ns: f64) -> Self {
        assert!(ns.is_finite() && ns >= 0.0, "invalid VDur: {ns}");
        VDur(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub fn from_micros(us: f64) -> Self {
        Self::from_nanos(us * 1_000.0)
    }

    /// Nanoseconds in this span.
    #[inline]
    pub fn as_nanos(self) -> f64 {
        self.0
    }

    /// Microseconds in this span.
    #[inline]
    pub fn as_micros(self) -> f64 {
        self.0 / 1_000.0
    }

    /// Seconds in this span.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 / 1e9
    }
}

impl fmt::Debug for VTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}ns", self.0)
    }
}

impl fmt::Debug for VDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ns", self.0)
    }
}

impl fmt::Display for VDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e6 {
            write!(f, "{:.3}ms", self.0 / 1e6)
        } else if self.0 >= 1e3 {
            write!(f, "{:.3}us", self.0 / 1e3)
        } else {
            write!(f, "{:.1}ns", self.0)
        }
    }
}

// VTime/VDur contain finite, non-negative floats by construction, so a
// total order exists.
impl Eq for VTime {}
impl PartialOrd for VTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for VTime {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("VTime is always finite")
    }
}
impl Eq for VDur {}
impl PartialOrd for VDur {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for VDur {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.partial_cmp(&other.0).expect("VDur is always finite")
    }
}

impl Add<VDur> for VTime {
    type Output = VTime;
    #[inline]
    fn add(self, rhs: VDur) -> VTime {
        VTime(self.0 + rhs.0)
    }
}
impl AddAssign<VDur> for VTime {
    #[inline]
    fn add_assign(&mut self, rhs: VDur) {
        self.0 += rhs.0;
    }
}
impl Sub<VTime> for VTime {
    type Output = VDur;
    /// Exact difference; panics (debug) if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: VTime) -> VDur {
        debug_assert!(self.0 >= rhs.0, "VTime subtraction went negative");
        VDur((self.0 - rhs.0).max(0.0))
    }
}
impl Add for VDur {
    type Output = VDur;
    #[inline]
    fn add(self, rhs: VDur) -> VDur {
        VDur(self.0 + rhs.0)
    }
}
impl AddAssign for VDur {
    #[inline]
    fn add_assign(&mut self, rhs: VDur) {
        self.0 += rhs.0;
    }
}
impl Sub for VDur {
    type Output = VDur;
    #[inline]
    fn sub(self, rhs: VDur) -> VDur {
        VDur((self.0 - rhs.0).max(0.0))
    }
}
impl SubAssign for VDur {
    #[inline]
    fn sub_assign(&mut self, rhs: VDur) {
        *self = *self - rhs;
    }
}
impl Mul<f64> for VDur {
    type Output = VDur;
    #[inline]
    fn mul(self, rhs: f64) -> VDur {
        VDur::from_nanos(self.0 * rhs)
    }
}
impl Div<f64> for VDur {
    type Output = VDur;
    #[inline]
    fn div(self, rhs: f64) -> VDur {
        VDur::from_nanos(self.0 / rhs)
    }
}
impl Sum for VDur {
    fn sum<I: Iterator<Item = VDur>>(iter: I) -> VDur {
        iter.fold(VDur::ZERO, |a, b| a + b)
    }
}

/// A per-rank virtual clock.
///
/// Exactly one thread (the rank's thread) ever touches a given clock, so no
/// synchronization is needed; cross-rank time only flows through message
/// timestamps.
#[derive(Debug, Clone)]
pub struct Clock {
    now: VTime,
    /// Total time charged via [`Clock::charge`], for introspection (e.g.
    /// separating compute time from wait time in reports).
    charged: VDur,
    /// Local-work cost multiplier. 1.0 for a healthy rank; a fault plan
    /// may set it above 1.0 to model a straggler (thermal throttling,
    /// noisy neighbor). Waiting is never scaled — only charged work.
    rate: f64,
}

impl Default for Clock {
    fn default() -> Self {
        Clock {
            now: VTime::ZERO,
            charged: VDur::ZERO,
            rate: 1.0,
        }
    }
}

impl Clock {
    /// A clock at the simulation epoch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> VTime {
        self.now
    }

    /// Set the local-work cost multiplier (must be >= 1 and finite).
    pub fn set_rate(&mut self, rate: f64) {
        assert!(
            rate.is_finite() && rate >= 1.0,
            "invalid clock rate: {rate}"
        );
        self.rate = rate;
    }

    /// Advance the clock by a local-work cost (scaled by the rank's rate).
    #[inline]
    pub fn charge(&mut self, d: VDur) {
        let d = if self.rate == 1.0 { d } else { d * self.rate };
        self.now += d;
        self.charged += d;
    }

    /// Merge an externally-observed instant (e.g. a message arrival): the
    /// clock jumps forward to `t` if `t` is in the local future, otherwise
    /// it is unchanged. Returns the time spent waiting (how far the clock
    /// jumped).
    #[inline]
    pub fn merge(&mut self, t: VTime) -> VDur {
        let wait = t.saturating_since(self.now);
        self.now = self.now.max(t);
        wait
    }

    /// The local-work cost multiplier in force.
    #[inline]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// A detached clock positioned at `t` with the same rate. Used for
    /// self-timed progression timelines (e.g. offloaded collective
    /// schedules) that advance independently of the rank's own clock and
    /// are merged back at a synchronization point.
    pub fn fork_at(&self, t: VTime) -> Clock {
        Clock {
            now: t,
            charged: VDur::ZERO,
            rate: self.rate,
        }
    }

    /// Total local-work time charged so far (excludes waiting).
    pub fn total_charged(&self) -> VDur {
        self.charged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vtime_arithmetic_roundtrips() {
        let t = VTime::from_nanos(1500.0);
        let d = VDur::from_micros(2.0);
        let t2 = t + d;
        assert_eq!(t2.as_nanos(), 3500.0);
        assert_eq!((t2 - t).as_nanos(), 2000.0);
        assert_eq!(t2.as_micros(), 3.5);
    }

    #[test]
    fn vtime_max_and_saturating() {
        let a = VTime::from_nanos(10.0);
        let b = VTime::from_nanos(20.0);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
        assert_eq!(a.saturating_since(b), VDur::ZERO);
        assert_eq!(b.saturating_since(a).as_nanos(), 10.0);
    }

    #[test]
    fn vdur_sub_saturates() {
        let a = VDur::from_nanos(5.0);
        let b = VDur::from_nanos(8.0);
        assert_eq!(a - b, VDur::ZERO);
        assert_eq!((b - a).as_nanos(), 3.0);
    }

    #[test]
    fn vdur_scaling() {
        let d = VDur::from_nanos(4.0);
        assert_eq!((d * 2.5).as_nanos(), 10.0);
        assert_eq!((d / 4.0).as_nanos(), 1.0);
    }

    #[test]
    fn vdur_sum() {
        let total: VDur = (1..=4).map(|i| VDur::from_nanos(i as f64)).sum();
        assert_eq!(total.as_nanos(), 10.0);
    }

    #[test]
    #[should_panic(expected = "invalid VDur")]
    fn vdur_rejects_negative() {
        let _ = VDur::from_nanos(-1.0);
    }

    #[test]
    #[should_panic(expected = "invalid VTime")]
    fn vtime_rejects_nan() {
        let _ = VTime::from_nanos(f64::NAN);
    }

    #[test]
    fn clock_charge_and_merge() {
        let mut c = Clock::new();
        c.charge(VDur::from_nanos(100.0));
        assert_eq!(c.now().as_nanos(), 100.0);
        // Merging a past instant is a no-op.
        assert_eq!(c.merge(VTime::from_nanos(50.0)), VDur::ZERO);
        assert_eq!(c.now().as_nanos(), 100.0);
        // Merging a future instant jumps forward and reports the wait.
        let wait = c.merge(VTime::from_nanos(400.0));
        assert_eq!(wait.as_nanos(), 300.0);
        assert_eq!(c.now().as_nanos(), 400.0);
        // Only `charge` counts as local work.
        assert_eq!(c.total_charged().as_nanos(), 100.0);
    }

    #[test]
    fn clock_rate_scales_charges_only() {
        let mut c = Clock::new();
        c.set_rate(2.0);
        c.charge(VDur::from_nanos(100.0));
        assert_eq!(c.now().as_nanos(), 200.0);
        assert_eq!(c.total_charged().as_nanos(), 200.0);
        // Waiting (merge) is not scaled.
        let wait = c.merge(VTime::from_nanos(500.0));
        assert_eq!(wait.as_nanos(), 300.0);
        assert_eq!(c.now().as_nanos(), 500.0);
    }

    #[test]
    fn vdur_display_units() {
        assert_eq!(format!("{}", VDur::from_nanos(12.0)), "12.0ns");
        assert_eq!(format!("{}", VDur::from_nanos(1200.0)), "1.200us");
        assert_eq!(format!("{}", VDur::from_nanos(2.5e6)), "2.500ms");
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![
            VTime::from_nanos(3.0),
            VTime::from_nanos(1.0),
            VTime::from_nanos(2.0),
        ];
        v.sort();
        assert_eq!(v[0].as_nanos(), 1.0);
        assert_eq!(v[2].as_nanos(), 3.0);
    }
}
