//! The calibrated cost model.
//!
//! Every virtual-time charge in the managed runtime, the JNI-analog
//! boundary, and the buffering layer comes from a named constant in this
//! file, so the whole calibration of the reproduction lives in one place.
//! The defaults are calibrated so the regenerated figures match the
//! *shape* of the paper's evaluation on TACC Frontera (who wins, by what
//! rough factor, where crossovers fall) — see `EXPERIMENTS.md` for the
//! paper-vs-measured comparison.
//!
//! Network-path parameters (LogGP per library profile) intentionally do
//! *not* live here: they are properties of the simulated native MPI
//! libraries and are defined by `mpisim::profile`.

use crate::time::VDur;

/// Costs of the managed runtime's memory system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemCosts {
    /// Bulk copy cost per byte (System.arraycopy / ByteBuffer bulk put —
    /// an optimized memcpy, ~40 GB/s).
    pub memcpy_per_byte_ns: f64,
    /// Fixed cost of any bulk copy (call + bounds checks).
    pub memcpy_fixed_ns: f64,
    /// Per-element read/write of an on-heap primitive array inside a
    /// "Java" loop (bounds check + direct addressing; JIT-friendly).
    pub array_elem_rw_ns: f64,
    /// Per-element absolute get/put on a *direct* ByteBuffer. Slower than
    /// array access on real JVMs (limit checks + unsafe access through the
    /// Buffer abstraction defeat vectorization) — this constant is what
    /// makes Figure 18 meaningful.
    pub direct_bb_elem_rw_ns: f64,
    /// Per-element get/put on a heap (non-direct) ByteBuffer.
    pub heap_bb_elem_rw_ns: f64,
    /// Fixed cost of allocating a managed object / array on the heap
    /// (bump-pointer allocation).
    pub heap_alloc_fixed_ns: f64,
    /// Per-byte zeroing cost of heap allocation.
    pub heap_alloc_per_byte_ns: f64,
    /// Fixed cost of `ByteBuffer.allocateDirect` (malloc + alignment +
    /// registration — "costly to create", per the paper).
    pub direct_alloc_fixed_ns: f64,
    /// Per-byte cost of direct allocation (page touching).
    pub direct_alloc_per_byte_ns: f64,
    /// Fixed cost of freeing a direct buffer.
    pub direct_free_fixed_ns: f64,
}

impl Default for MemCosts {
    fn default() -> Self {
        MemCosts {
            memcpy_per_byte_ns: 0.025,
            memcpy_fixed_ns: 30.0,
            array_elem_rw_ns: 0.40,
            direct_bb_elem_rw_ns: 1.30,
            heap_bb_elem_rw_ns: 0.85,
            heap_alloc_fixed_ns: 25.0,
            heap_alloc_per_byte_ns: 0.010,
            direct_alloc_fixed_ns: 2_000.0,
            direct_alloc_per_byte_ns: 0.050,
            direct_free_fixed_ns: 600.0,
        }
    }
}

/// Costs of crossing the JNI-analog boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JniCosts {
    /// One Java→C→Java call transition (argument marshalling, handle
    /// pinning bookkeeping, stack switch).
    pub transition_ns: f64,
    /// `GetDirectBufferAddress` — reading the address field.
    pub get_direct_buffer_address_ns: f64,
    /// Fixed part of `Get<Type>ArrayElements` (always copies on JVMs
    /// without pinning); the per-byte part is `MemCosts::memcpy_per_byte_ns`.
    pub get_array_elements_fixed_ns: f64,
    /// Fixed part of `Release<Type>ArrayElements` (copy-back governed by
    /// the release mode).
    pub release_array_elements_fixed_ns: f64,
    /// `GetPrimitiveArrayCritical` / release pair — no copy, but flips the
    /// GC lock.
    pub critical_fixed_ns: f64,
}

impl Default for JniCosts {
    fn default() -> Self {
        JniCosts {
            transition_ns: 110.0,
            get_direct_buffer_address_ns: 25.0,
            get_array_elements_fixed_ns: 180.0,
            release_array_elements_fixed_ns: 120.0,
            critical_fixed_ns: 55.0,
        }
    }
}

/// Costs of the managed runtime's garbage collector (semispace copying,
/// stop-the-world).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GcCosts {
    /// Fixed pause per collection (root scan, flip).
    pub pause_fixed_ns: f64,
    /// Per-live-byte evacuation cost.
    pub pause_per_live_byte_ns: f64,
}

impl Default for GcCosts {
    fn default() -> Self {
        GcCosts {
            pause_fixed_ns: 18_000.0,
            pause_per_live_byte_ns: 0.035,
        }
    }
}

/// Costs of the `mpjbuf` buffering layer's direct-buffer pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolCosts {
    /// Acquiring a pooled buffer that is already available (free-list hit).
    pub acquire_hit_ns: f64,
    /// Returning a buffer to the pool.
    pub release_ns: f64,
}

impl Default for PoolCosts {
    fn default() -> Self {
        PoolCosts {
            acquire_hit_ns: 150.0,
            release_ns: 95.0,
        }
    }
}

/// The complete calibrated cost model. Cloned into every simulated rank.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostModel {
    pub mem: MemCosts,
    pub jni: JniCosts,
    pub gc: GcCosts,
    pub pool: PoolCosts,
}

impl CostModel {
    /// Bulk copy of `n` bytes (arraycopy/memcpy class).
    #[inline]
    pub fn memcpy(&self, n: usize) -> VDur {
        VDur::from_nanos(self.mem.memcpy_fixed_ns + n as f64 * self.mem.memcpy_per_byte_ns)
    }

    /// A loop of `n` on-heap array element accesses.
    #[inline]
    pub fn array_loop(&self, n: usize) -> VDur {
        VDur::from_nanos(n as f64 * self.mem.array_elem_rw_ns)
    }

    /// A loop of `n` direct-ByteBuffer element accesses.
    #[inline]
    pub fn direct_bb_loop(&self, n: usize) -> VDur {
        VDur::from_nanos(n as f64 * self.mem.direct_bb_elem_rw_ns)
    }

    /// A loop of `n` heap-ByteBuffer element accesses.
    #[inline]
    pub fn heap_bb_loop(&self, n: usize) -> VDur {
        VDur::from_nanos(n as f64 * self.mem.heap_bb_elem_rw_ns)
    }

    /// Heap allocation of an `n`-byte object.
    #[inline]
    pub fn heap_alloc(&self, n: usize) -> VDur {
        VDur::from_nanos(self.mem.heap_alloc_fixed_ns + n as f64 * self.mem.heap_alloc_per_byte_ns)
    }

    /// `allocateDirect` of `n` bytes.
    #[inline]
    pub fn direct_alloc(&self, n: usize) -> VDur {
        VDur::from_nanos(
            self.mem.direct_alloc_fixed_ns + n as f64 * self.mem.direct_alloc_per_byte_ns,
        )
    }

    /// GC pause with `live` live bytes in the from-space.
    #[inline]
    pub fn gc_pause(&self, live: usize) -> VDur {
        VDur::from_nanos(self.gc.pause_fixed_ns + live as f64 * self.gc.pause_per_live_byte_ns)
    }

    /// One JNI call transition.
    #[inline]
    pub fn jni_transition(&self) -> VDur {
        VDur::from_nanos(self.jni.transition_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_positive_and_finite() {
        let c = CostModel::default();
        for v in [
            c.mem.memcpy_per_byte_ns,
            c.mem.array_elem_rw_ns,
            c.mem.direct_bb_elem_rw_ns,
            c.mem.heap_bb_elem_rw_ns,
            c.mem.direct_alloc_fixed_ns,
            c.jni.transition_ns,
            c.gc.pause_fixed_ns,
            c.pool.acquire_hit_ns,
        ] {
            assert!(v.is_finite() && v > 0.0);
        }
    }

    #[test]
    fn bytebuffer_element_access_slower_than_array() {
        // The invariant Figure 18 depends on.
        let c = CostModel::default();
        assert!(c.mem.direct_bb_elem_rw_ns > c.mem.array_elem_rw_ns);
        assert!(c.direct_bb_loop(1000) > c.array_loop(1000));
    }

    #[test]
    fn bulk_copy_much_cheaper_than_element_loop() {
        // The reason the buffering layer copies in bulk.
        let c = CostModel::default();
        let n = 1 << 20;
        assert!(c.memcpy(n) < c.array_loop(n) / 4.0);
    }

    #[test]
    fn direct_alloc_much_costlier_than_heap_alloc() {
        // "Direct ByteBuffers are costly to create" — why the pool exists.
        let c = CostModel::default();
        assert!(c.direct_alloc(4096) > c.heap_alloc(4096) * 10.0);
        assert!(
            c.direct_alloc(4096).as_nanos() > (c.pool.acquire_hit_ns + c.pool.release_ns) * 5.0,
            "a pooled round-trip must stay far cheaper than allocateDirect"
        );
    }

    #[test]
    fn cost_helpers_scale_linearly() {
        let c = CostModel::default();
        let small = c.memcpy(1000).as_nanos() - c.mem.memcpy_fixed_ns;
        let large = c.memcpy(2000).as_nanos() - c.mem.memcpy_fixed_ns;
        assert!((large - 2.0 * small).abs() < 1e-9);
    }

    #[test]
    fn cost_model_is_copy_and_comparable() {
        let c = CostModel::default();
        let d = c;
        assert_eq!(c, d);
    }
}
