//! The LogGP network model and per-link serialization state.
//!
//! LogGP (Alexandrov et al., 1995) extends LogP with a per-byte gap `G` so
//! that large-message bandwidth is modelled realistically:
//!
//! * `L` — wire latency between two NICs;
//! * `o_send`/`o_recv` — CPU overhead to inject / drain a message;
//! * `g` — minimum gap between consecutive message injections (per-message
//!   cost at the NIC);
//! * `G` — gap per byte (inverse bandwidth) at the bottleneck link.
//!
//! A message of `n` bytes injected by a sender whose clock reads `t` is
//! modelled as:
//!
//! ```text
//! inject_start  = max(t + o_send, link_free)
//! inject_done   = inject_start + g + n * G
//! arrival       = inject_done + L
//! link_free'    = inject_done
//! ```
//!
//! The receiver charges `o_recv` on top of `arrival` when it matches the
//! message. [`LinkState`] carries `link_free` for one direction of one
//! (src, dst) pair and is only ever touched by the sending rank's thread,
//! which keeps the whole simulation deterministic.

use crate::time::{VDur, VTime};

/// LogGP parameters for one class of transfers (e.g. the inter-node RDMA
/// path of one MPI library, or its intra-node shared-memory path).
///
/// All values are in nanoseconds (per byte for `gap_per_byte_ns`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogGp {
    /// Wire/transport latency `L`.
    pub latency_ns: f64,
    /// Sender CPU overhead `o_send`.
    pub o_send_ns: f64,
    /// Receiver CPU overhead `o_recv`.
    pub o_recv_ns: f64,
    /// Per-message injection gap `g`.
    pub gap_msg_ns: f64,
    /// Per-byte gap `G` (inverse of the bottleneck bandwidth).
    pub gap_per_byte_ns: f64,
}

impl LogGp {
    /// Inverse bandwidth helper: `G` for a link of `gbps` gigabits/s.
    ///
    /// `G [ns/B] = 8 / gbps`.
    pub fn gap_for_gbps(gbps: f64) -> f64 {
        assert!(gbps > 0.0);
        8.0 / gbps
    }

    /// Time the sender's CPU is busy injecting an `n`-byte message
    /// (overhead only; serialization is accounted by [`LinkState`]).
    #[inline]
    pub fn o_send(&self) -> VDur {
        VDur::from_nanos(self.o_send_ns)
    }

    /// Receiver-side drain overhead.
    #[inline]
    pub fn o_recv(&self) -> VDur {
        VDur::from_nanos(self.o_recv_ns)
    }

    /// Pure serialization time of `n` bytes: `g + n * G`.
    #[inline]
    pub fn serialize(&self, n: usize) -> VDur {
        VDur::from_nanos(self.gap_msg_ns + n as f64 * self.gap_per_byte_ns)
    }

    /// End-to-end unloaded transfer time of `n` bytes (no queueing):
    /// `o_send + g + n*G + L`. Useful for analytic expectations in tests.
    pub fn unloaded(&self, n: usize) -> VDur {
        self.o_send() + self.serialize(n) + VDur::from_nanos(self.latency_ns)
    }
}

/// Serialization state of one direction of one (src, dst) link.
///
/// Owned (logically) by the sending rank: only that rank's thread ever
/// calls [`LinkState::inject`], so no locking is required and the outcome
/// is independent of thread scheduling.
#[derive(Debug, Clone, Default)]
pub struct LinkState {
    free_at: VTime,
}

impl LinkState {
    /// Fresh link, free from the epoch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inject an `n`-byte message whose sender clock reads `sender_now`
    /// (already including `o_send`). Returns the arrival instant at the
    /// destination NIC and updates the link's busy horizon.
    pub fn inject(&mut self, sender_now: VTime, n: usize, p: &LogGp) -> VTime {
        let start = sender_now.max(self.free_at);
        let done = start + p.serialize(n);
        self.free_at = done;
        done + VDur::from_nanos(p.latency_ns)
    }

    /// When the link next becomes free (for introspection/tests).
    pub fn free_at(&self) -> VTime {
        self.free_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> LogGp {
        LogGp {
            latency_ns: 1000.0,
            o_send_ns: 100.0,
            o_recv_ns: 100.0,
            gap_msg_ns: 50.0,
            gap_per_byte_ns: 0.1,
        }
    }

    #[test]
    fn gap_for_gbps_matches_bandwidth() {
        // 100 Gb/s => 12.5 GB/s => 0.08 ns/B
        let g = LogGp::gap_for_gbps(100.0);
        assert!((g - 0.08).abs() < 1e-12);
    }

    #[test]
    fn unloaded_single_message() {
        let p = params();
        // 100 + 50 + 1000*0.1 + 1000 = 1250
        assert_eq!(p.unloaded(1000).as_nanos(), 1250.0);
    }

    #[test]
    fn link_serializes_back_to_back_messages() {
        let p = params();
        let mut link = LinkState::new();
        let t0 = VTime::from_nanos(0.0);
        // First message: starts at 0, serialization 50 + 100*0.1 = 60,
        // arrival 60 + 1000 = 1060.
        let a1 = link.inject(t0, 100, &p);
        assert_eq!(a1.as_nanos(), 1060.0);
        assert_eq!(link.free_at().as_nanos(), 60.0);
        // Second message "sent" at t=0 again (e.g. window of isends):
        // must wait for the link, starts at 60, arrives at 60+60+1000.
        let a2 = link.inject(t0, 100, &p);
        assert_eq!(a2.as_nanos(), 1120.0);
    }

    #[test]
    fn link_idle_gap_does_not_accumulate() {
        let p = params();
        let mut link = LinkState::new();
        let a1 = link.inject(VTime::from_nanos(0.0), 0, &p);
        assert_eq!(a1.as_nanos(), 1050.0);
        // A much later message is not delayed by the long-idle link.
        let a2 = link.inject(VTime::from_nanos(10_000.0), 0, &p);
        assert_eq!(a2.as_nanos(), 11_050.0);
    }

    #[test]
    fn bandwidth_asymptote_is_one_over_g() {
        let p = params();
        let mut link = LinkState::new();
        let n = 1 << 20; // 1 MiB
        let mut t = VTime::ZERO;
        let iters = 16;
        let mut last_arrival = VTime::ZERO;
        for _ in 0..iters {
            t = t + p.o_send(); // sender CPU
            last_arrival = link.inject(t, n, &p);
        }
        let total = last_arrival.as_nanos();
        let bytes = (iters * n) as f64;
        let gbs = bytes / total; // bytes per ns == GB/s
        let model = 1.0 / p.gap_per_byte_ns;
        // Within 5% of the asymptote for 16 MiB of traffic.
        assert!(
            (gbs - model).abs() / model < 0.05,
            "gbs={gbs} model={model}"
        );
    }
}
