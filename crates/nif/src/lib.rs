//! `nif` — the Native InterFace: this reproduction's JNI analogue.
//!
//! The paper's whole design space is defined by the three ways JNI lets
//! native code reach Java data, and this crate implements exactly that
//! contract over the managed runtime:
//!
//! 1. [`get_array_elements`] / [`release_array_elements`] — always
//!    **copies** on JVMs without pinning (ours moves objects, so it never
//!    pins): costs a transition, a fixed setup, and a bulk copy each way.
//! 2. [`get_primitive_array_critical`] — **zero copy**: returns a view of
//!    the live heap bytes while *disabling the collector*. The returned
//!    guard holds the runtime borrow, so the type system enforces the JNI
//!    rule that no allocation may happen inside the critical region — and
//!    the runtime additionally enforces it dynamically for allocations
//!    that would trigger a collection.
//! 3. [`get_direct_buffer_address`] — for **direct ByteBuffers** only:
//!    hands back the stable off-heap storage at the cost of a field read.
//!
//! Every entry charges the JNI transition cost, which is a visible part of
//! Figure 11's "Java vs native" overhead.

use mrt::prim::Prim;
use mrt::{DirectBuffer, JArray, MrtResult, Runtime};
use vtime::{Clock, VDur};

/// Release mode for [`release_array_elements`] (JNI `mode` argument).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReleaseMode {
    /// `0`: copy the native buffer back and free it.
    CopyBack,
    /// `JNI_COMMIT`: copy back but keep the native buffer usable.
    Commit,
    /// `JNI_ABORT`: free the native buffer without copying back.
    Abort,
}

/// The native-side copy produced by [`get_array_elements`].
#[derive(Debug)]
pub struct NativeArray<T: Prim> {
    /// Native copy of the array contents.
    pub data: Vec<T>,
    /// Always true on this runtime (no pinning), mirroring the JNI
    /// `isCopy` out-parameter.
    pub is_copy: bool,
}

/// Charge one Java→C→Java call transition (used by the bindings around
/// every native MPI invocation).
pub fn jni_transition(rt: &Runtime, clock: &mut Clock) {
    let t0 = clock.now();
    clock.charge(rt.cost().jni_transition());
    obs::count("nif.transitions", 1);
    obs::span("transition", "nif", t0, clock.now(), Vec::new());
}

/// `Get<Type>ArrayElements`: produce a native copy of a managed array.
///
/// The JVM cannot pin (the collector moves objects), so this always
/// copies — the exact overhead the paper's buffering layer competes with.
pub fn get_array_elements<T: Prim>(
    rt: &Runtime,
    clock: &mut Clock,
    arr: JArray<T>,
) -> MrtResult<NativeArray<T>> {
    let t0 = clock.now();
    clock.charge(rt.cost().jni_transition());
    clock.charge(VDur::from_nanos(rt.cost().jni.get_array_elements_fixed_ns));
    obs::count("nif.crossings.copy", 1);
    let mut data = vec![T::default(); arr.len()];
    // Bulk copy out (charged inside array_read as a memcpy).
    rt.array_read(arr, 0, &mut data, clock)?;
    if obs::tracing_enabled() {
        obs::span(
            "get_elements",
            "nif",
            t0,
            clock.now(),
            vec![(
                "bytes",
                obs::ArgValue::U64((arr.len() * std::mem::size_of::<T>()) as u64),
            )],
        );
    }
    Ok(NativeArray {
        data,
        is_copy: true,
    })
}

/// `Release<Type>ArrayElements`: optionally copy the native buffer back.
pub fn release_array_elements<T: Prim>(
    rt: &mut Runtime,
    clock: &mut Clock,
    arr: JArray<T>,
    native: &NativeArray<T>,
    mode: ReleaseMode,
) -> MrtResult<()> {
    let t0 = clock.now();
    clock.charge(rt.cost().jni_transition());
    clock.charge(VDur::from_nanos(
        rt.cost().jni.release_array_elements_fixed_ns,
    ));
    obs::count("nif.crossings.copy", 1);
    let out = match mode {
        ReleaseMode::CopyBack | ReleaseMode::Commit => rt.array_write(arr, 0, &native.data, clock),
        ReleaseMode::Abort => Ok(()),
    };
    if obs::tracing_enabled() {
        obs::span(
            "release_elements",
            "nif",
            t0,
            clock.now(),
            vec![(
                "bytes",
                obs::ArgValue::U64((arr.len() * std::mem::size_of::<T>()) as u64),
            )],
        );
    }
    out
}

/// Zero-copy critical access to a managed array's bytes.
///
/// While the guard lives, the collector is locked out (and, through the
/// exclusive runtime borrow, so is every other runtime operation — the
/// strictest reading of the JNI critical-region rules).
pub struct CriticalGuard<'a, T: Prim> {
    rt: &'a mut Runtime,
    arr: JArray<T>,
}

impl<'a, T: Prim> CriticalGuard<'a, T> {
    /// The raw little-endian element bytes, as native code would see them
    /// through the returned pointer.
    pub fn bytes(&self) -> &[u8] {
        self.rt
            .heap()
            .bytes(self.arr.handle())
            .expect("array is live while the guard exists")
    }

    /// Mutable access to the element bytes.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        self.rt
            .heap_mut()
            .bytes_mut(self.arr.handle())
            .expect("array is live while the guard exists")
    }

    /// The heap offset the "pointer" refers to — stable only while this
    /// guard (the critical region) exists.
    pub fn address(&self) -> usize {
        self.rt
            .heap()
            .address_of(self.arr.handle())
            .expect("array is live while the guard exists")
    }
}

impl<'a, T: Prim> Drop for CriticalGuard<'a, T> {
    fn drop(&mut self) {
        self.rt.heap_mut().leave_critical();
    }
}

/// `GetPrimitiveArrayCritical`: zero-copy access with the GC disabled.
pub fn get_primitive_array_critical<'a, T: Prim>(
    rt: &'a mut Runtime,
    clock: &mut Clock,
    arr: JArray<T>,
) -> MrtResult<CriticalGuard<'a, T>> {
    let t0 = clock.now();
    clock.charge(rt.cost().jni_transition());
    clock.charge(VDur::from_nanos(rt.cost().jni.critical_fixed_ns));
    obs::count("nif.crossings.critical", 1);
    obs::span("critical", "nif", t0, clock.now(), Vec::new());
    // Validate liveness before locking the collector.
    rt.heap().bytes(arr.handle())?;
    rt.heap_mut().enter_critical();
    Ok(CriticalGuard { rt, arr })
}

/// `GetDirectBufferAddress`: the stable storage of a direct buffer.
pub fn get_direct_buffer_address<'a>(
    rt: &'a Runtime,
    clock: &mut Clock,
    buf: DirectBuffer,
) -> MrtResult<&'a [u8]> {
    let t0 = clock.now();
    clock.charge(rt.cost().jni_transition());
    clock.charge(VDur::from_nanos(rt.cost().jni.get_direct_buffer_address_ns));
    obs::count("nif.crossings.direct", 1);
    obs::span("direct_address", "nif", t0, clock.now(), Vec::new());
    rt.direct_bytes(buf)
}

/// Mutable flavour of [`get_direct_buffer_address`] for receive paths.
pub fn get_direct_buffer_address_mut<'a>(
    rt: &'a mut Runtime,
    clock: &mut Clock,
    buf: DirectBuffer,
) -> MrtResult<&'a mut [u8]> {
    let t0 = clock.now();
    clock.charge(rt.cost().jni_transition());
    clock.charge(VDur::from_nanos(rt.cost().jni.get_direct_buffer_address_ns));
    obs::count("nif.crossings.direct", 1);
    obs::span("direct_address", "nif", t0, clock.now(), Vec::new());
    rt.direct_bytes_mut(buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrt::MrtError;
    use vtime::CostModel;

    fn setup() -> (Runtime, Clock) {
        (
            Runtime::with_heap(CostModel::default(), 1 << 16, 1 << 18),
            Clock::new(),
        )
    }

    #[test]
    fn get_array_elements_copies_out() {
        let (mut rt, mut c) = setup();
        let a = rt.alloc_array::<i32>(4, &mut c).unwrap();
        for i in 0..4 {
            rt.array_set(a, i, i as i32 * 5, &mut c).unwrap();
        }
        let native = get_array_elements(&rt, &mut c, a).unwrap();
        assert!(native.is_copy, "no pinning on this runtime");
        assert_eq!(native.data, vec![0, 5, 10, 15]);
    }

    #[test]
    fn release_copy_back_vs_abort() {
        let (mut rt, mut c) = setup();
        let a = rt.alloc_array::<i32>(2, &mut c).unwrap();
        let mut native = get_array_elements(&rt, &mut c, a).unwrap();
        native.data[0] = 77;
        release_array_elements(&mut rt, &mut c, a, &native, ReleaseMode::Abort).unwrap();
        assert_eq!(rt.array_get(a, 0, &mut c).unwrap(), 0, "abort discards");
        release_array_elements(&mut rt, &mut c, a, &native, ReleaseMode::CopyBack).unwrap();
        assert_eq!(rt.array_get(a, 0, &mut c).unwrap(), 77, "copy-back lands");
    }

    #[test]
    fn modifications_via_copy_are_invisible_until_release() {
        // The classic JNI-on-non-pinning-JVM surprise.
        let (mut rt, mut c) = setup();
        let a = rt.alloc_array::<i16>(1, &mut c).unwrap();
        let mut native = get_array_elements(&rt, &mut c, a).unwrap();
        native.data[0] = 42;
        assert_eq!(rt.array_get(a, 0, &mut c).unwrap(), 0);
        release_array_elements(&mut rt, &mut c, a, &native, ReleaseMode::Commit).unwrap();
        assert_eq!(rt.array_get(a, 0, &mut c).unwrap(), 42);
    }

    #[test]
    fn critical_gives_zero_copy_view_and_locks_gc() {
        let (mut rt, mut c) = setup();
        let a = rt.alloc_array::<i32>(2, &mut c).unwrap();
        rt.array_set(a, 0, 0x0A0B0C0D, &mut c).unwrap();
        {
            let mut g = get_primitive_array_critical(&mut rt, &mut c, a).unwrap();
            assert_eq!(&g.bytes()[..4], &[0x0D, 0x0C, 0x0B, 0x0A]);
            g.bytes_mut()[4] = 0xFF;
            let _addr = g.address();
        }
        // Guard dropped: GC unlocked, write visible.
        assert!(!rt.heap().gc_locked());
        assert_eq!(rt.array_get(a, 1, &mut c).unwrap(), 0xFF);
    }

    #[test]
    fn critical_region_blocks_collection_via_runtime() {
        let (mut rt, mut c) = setup();
        let a = rt.alloc_array::<i8>(64, &mut c).unwrap();
        let g = get_primitive_array_critical(&mut rt, &mut c, a).unwrap();
        // The exclusive borrow makes allocation impossible to even
        // express while `g` lives — the JNI rule, statically enforced.
        drop(g);
        assert!(!rt.heap().gc_locked());
    }

    #[test]
    fn critical_on_dead_array_fails_without_locking() {
        let (mut rt, mut c) = setup();
        let a = rt.alloc_array::<i8>(8, &mut c).unwrap();
        rt.release_array(a).unwrap();
        assert!(matches!(
            get_primitive_array_critical(&mut rt, &mut c, a),
            Err(MrtError::BadHandle)
        ));
        assert!(!rt.heap().gc_locked(), "failed acquisition must not lock");
    }

    #[test]
    fn direct_buffer_address_is_stable_across_gc() {
        let (mut rt, mut c) = setup();
        let d = rt.allocate_direct(16, &mut c);
        get_direct_buffer_address_mut(&mut rt, &mut c, d).unwrap()[3] = 9;
        // Heavy GC churn.
        for _ in 0..5 {
            let junk = rt.alloc_array::<i64>(1024, &mut c).unwrap();
            rt.release_array(junk).unwrap();
            rt.gc(&mut c);
        }
        assert_eq!(get_direct_buffer_address(&rt, &mut c, d).unwrap()[3], 9);
    }

    #[test]
    fn costs_get_elements_dominates_direct_address() {
        // Why direct buffers win at the boundary: pointer read vs copy.
        let (mut rt, mut c) = setup();
        let n = 1 << 14;
        let a = rt.alloc_array::<i8>(n, &mut c).unwrap();
        let d = rt.allocate_direct(n, &mut c);
        let t0 = c.now();
        let _copy = get_array_elements(&rt, &mut c, a).unwrap();
        let t_copy = c.now() - t0;
        let t1 = c.now();
        let _ptr = get_direct_buffer_address(&rt, &mut c, d).unwrap();
        let t_ptr = c.now() - t1;
        assert!(
            t_copy.as_nanos() > 3.0 * t_ptr.as_nanos(),
            "copy path {t_copy:?} must dwarf pointer path {t_ptr:?}"
        );
    }

    #[test]
    fn critical_cheaper_than_copy_for_large_arrays() {
        let (mut rt, mut c) = setup();
        let n = 1 << 14;
        let a = rt.alloc_array::<i8>(n, &mut c).unwrap();
        let t0 = c.now();
        let _copy = get_array_elements(&rt, &mut c, a).unwrap();
        let t_copy = c.now() - t0;
        let t1 = c.now();
        {
            let _g = get_primitive_array_critical(&mut rt, &mut c, a).unwrap();
        }
        let t_crit = c.now() - t1;
        assert!(t_crit < t_copy);
    }
}
