//! Distributed k-means clustering — a Big-Data-style workload of the kind
//! the paper cites as Java's home turf (Spark/Hadoop analytics).
//!
//! Each rank holds a shard of 2-D points in managed arrays. Every
//! iteration it assigns points to the nearest centroid, accumulates
//! per-cluster sums locally, and combines them with `allreduce` (arrays
//! API). Centroids are identical on every rank by construction — no
//! final broadcast needed — and the run is verified against a sequential
//! reference.
//!
//! Run with: `cargo run --example kmeans`

use mvapich2j::{run_job, JobConfig, ReduceOp, Topology};

const K: usize = 3;
const POINTS_PER_RANK: usize = 200;
const ITERS: usize = 12;

/// Deterministic pseudo-random point cloud around three true centres.
fn point(global_idx: usize) -> (f64, f64) {
    let centres = [(0.0, 0.0), (8.0, 8.0), (-6.0, 7.0)];
    let c = centres[global_idx % 3];
    // Cheap LCG noise in [-1, 1).
    let mut s = (global_idx as u64)
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let mut next = || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    };
    (c.0 + next(), c.1 + next())
}

fn assign(px: f64, py: f64, cx: &[f64], cy: &[f64]) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for k in 0..K {
        let d = (px - cx[k]).powi(2) + (py - cy[k]).powi(2);
        if d < best_d {
            best_d = d;
            best = k;
        }
    }
    best
}

/// Sequential reference implementation over the full data set.
fn reference(n_total: usize) -> (Vec<f64>, Vec<f64>) {
    let pts: Vec<(f64, f64)> = (0..n_total).map(point).collect();
    let mut cx: Vec<f64> = (0..K).map(|k| pts[k].0).collect();
    let mut cy: Vec<f64> = (0..K).map(|k| pts[k].1).collect();
    for _ in 0..ITERS {
        let mut sx = vec![0.0; K];
        let mut sy = vec![0.0; K];
        let mut cnt = vec![0.0; K];
        for &(px, py) in &pts {
            let k = assign(px, py, &cx, &cy);
            sx[k] += px;
            sy[k] += py;
            cnt[k] += 1.0;
        }
        for k in 0..K {
            if cnt[k] > 0.0 {
                cx[k] = sx[k] / cnt[k];
                cy[k] = sy[k] / cnt[k];
            }
        }
    }
    (cx, cy)
}

fn main() {
    let topo = Topology::new(2, 2);
    let p = topo.size();
    let n_total = POINTS_PER_RANK * p;
    let (ref_cx, ref_cy) = reference(n_total);

    let results = run_job(JobConfig::mvapich2j(topo), |env| {
        let world = env.world();
        let me = env.rank();

        // Load this rank's shard into managed arrays.
        let xs = env.new_array::<f64>(POINTS_PER_RANK).unwrap();
        let ys = env.new_array::<f64>(POINTS_PER_RANK).unwrap();
        for i in 0..POINTS_PER_RANK {
            let (px, py) = point(me * POINTS_PER_RANK + i);
            env.array_set(xs, i, px).unwrap();
            env.array_set(ys, i, py).unwrap();
        }

        // Initial centroids: the first K global points (same everywhere).
        let mut cx: Vec<f64> = (0..K).map(|k| point(k).0).collect();
        let mut cy: Vec<f64> = (0..K).map(|k| point(k).1).collect();

        // Accumulators as managed arrays: [sx.. sy.. count..].
        let local = env.new_array::<f64>(3 * K).unwrap();
        let global = env.new_array::<f64>(3 * K).unwrap();

        for _ in 0..ITERS {
            let mut acc = vec![0.0f64; 3 * K];
            for i in 0..POINTS_PER_RANK {
                let px = env.array_get(xs, i).unwrap();
                let py = env.array_get(ys, i).unwrap();
                let k = assign(px, py, &cx, &cy);
                acc[k] += px;
                acc[K + k] += py;
                acc[2 * K + k] += 1.0;
            }
            env.array_write(local, 0, &acc).unwrap();
            // Combine partial sums across ranks (arrays API).
            env.allreduce_array(local, global, 3 * K as i32, ReduceOp::Sum, world)
                .unwrap();
            let mut tot = vec![0.0f64; 3 * K];
            env.array_read(global, 0, &mut tot).unwrap();
            for k in 0..K {
                if tot[2 * K + k] > 0.0 {
                    cx[k] = tot[k] / tot[2 * K + k];
                    cy[k] = tot[K + k] / tot[2 * K + k];
                }
            }
        }
        (me, cx, cy, env.wtime() * 1e6)
    });

    println!("kmeans: {K} clusters, {n_total} points on {p} ranks, {ITERS} iterations");
    for k in 0..K {
        println!(
            "  centroid {k}: ({:8.4}, {:8.4})  reference ({:8.4}, {:8.4})",
            results[0].1[k], results[0].2[k], ref_cx[k], ref_cy[k]
        );
    }
    // All ranks converge to identical centroids, matching the reference.
    for (rank, cx, cy, _) in &results {
        for k in 0..K {
            assert!(
                (cx[k] - ref_cx[k]).abs() < 1e-9 && (cy[k] - ref_cy[k]).abs() < 1e-9,
                "rank {rank} centroid {k} diverged from reference"
            );
        }
    }
    println!("  virtual time: {:.1} us per rank", results[0].3);
    println!("kmeans OK: distributed centroids match the sequential reference");
}
