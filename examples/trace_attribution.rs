//! Programmatic latency attribution: run a k-means-style workload with
//! tracing enabled, feed the harvested trace straight into the analyzer,
//! and print where each rank's virtual wall time actually went —
//! GC, JNI copies, staging, fabric transfer, or waiting for a match.
//!
//! The same analysis is available offline (`ombj --trace-out t.json`
//! then `obs-analyze t.json`) and inline (`ombj ... --analyze`); this
//! example shows the in-process API a workload can call itself.
//!
//! Run with: `cargo run --example trace_attribution`

use mvapich2j::{run_job_with_obs, JobConfig, ReduceOp, Topology};

const K: usize = 3;
const POINTS_PER_RANK: usize = 200;
const ITERS: usize = 12;

/// Deterministic pseudo-random point cloud around three true centres.
fn point(global_idx: usize) -> (f64, f64) {
    let centres = [(0.0, 0.0), (8.0, 8.0), (-6.0, 7.0)];
    let c = centres[global_idx % 3];
    let mut s = (global_idx as u64)
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let mut next = || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    };
    (c.0 + next(), c.1 + next())
}

fn assign(px: f64, py: f64, cx: &[f64], cy: &[f64]) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for k in 0..K {
        let d = (px - cx[k]).powi(2) + (py - cy[k]).powi(2);
        if d < best_d {
            best_d = d;
            best = k;
        }
    }
    best
}

fn main() {
    let topo = Topology::new(2, 2);
    let p = topo.size();

    // Same job as `examples/kmeans.rs`, but with the event tracer on.
    let cfg = JobConfig::mvapich2j(topo).with_obs(obs::ObsOptions::traced());
    let (results, report) = run_job_with_obs(cfg, |env| {
        let world = env.world();
        let me = env.rank();

        let xs = env.new_array::<f64>(POINTS_PER_RANK).unwrap();
        let ys = env.new_array::<f64>(POINTS_PER_RANK).unwrap();
        for i in 0..POINTS_PER_RANK {
            let (px, py) = point(me * POINTS_PER_RANK + i);
            env.array_set(xs, i, px).unwrap();
            env.array_set(ys, i, py).unwrap();
        }

        let mut cx: Vec<f64> = (0..K).map(|k| point(k).0).collect();
        let mut cy: Vec<f64> = (0..K).map(|k| point(k).1).collect();
        let local = env.new_array::<f64>(3 * K).unwrap();
        let global = env.new_array::<f64>(3 * K).unwrap();

        for _ in 0..ITERS {
            // A workload can delimit its own attribution windows: each
            // `bench.size` marker opens a window the analyzer buckets by
            // the carried payload size (here the 3K-double allreduce).
            obs::instant(
                "bench.size",
                "bench",
                env.now(),
                vec![("bytes", obs::ArgValue::U64((3 * K * 8) as u64))],
            );
            let mut acc = vec![0.0f64; 3 * K];
            for i in 0..POINTS_PER_RANK {
                let px = env.array_get(xs, i).unwrap();
                let py = env.array_get(ys, i).unwrap();
                let k = assign(px, py, &cx, &cy);
                acc[k] += px;
                acc[K + k] += py;
                acc[2 * K + k] += 1.0;
            }
            env.array_write(local, 0, &acc).unwrap();
            env.allreduce_array(local, global, 3 * K as i32, ReduceOp::Sum, world)
                .unwrap();
            let mut tot = vec![0.0f64; 3 * K];
            env.array_read(global, 0, &mut tot).unwrap();
            for k in 0..K {
                if tot[2 * K + k] > 0.0 {
                    cx[k] = tot[k] / tot[2 * K + k];
                    cy[k] = tot[K + k] / tot[2 * K + k];
                }
            }
        }
        env.wtime() * 1e6
    });

    println!(
        "kmeans on {p} ranks, {ITERS} iterations — rank 0 wall time {:.1} virtual us\n",
        results[0]
    );

    // Reconstruct the causal graph and attribute the wall time.
    let analysis = obs::analyze::analyze(&report);
    print!("{}", analysis.render_text());

    // The structured result is available too, e.g. for a dashboard:
    println!(
        "\nmanaged-boundary share (gc + copy + staging): {:.2}% of wall time",
        analysis.boundary_share_pct()
    );
    for cat in ["fabric", "wait"] {
        println!(
            "{cat:>7} share: {:.2}% of wall time",
            analysis.category_share_pct(cat)
        );
    }
    for c in &analysis.collectives {
        println!(
            "collective {:>10}: {} instances, max skew {:.3} us, straggler rank {}, \
             critical path {} message hops",
            c.op,
            c.instances,
            c.max_skew_ns / 1_000.0,
            c.straggler,
            c.critical_hops
        );
    }
}
