//! Quickstart: a minimal MVAPICH2-J program.
//!
//! Spawns a 4-rank simulated job on one node. Rank 0 broadcasts a
//! message, every rank contributes to an allreduce, and rank pairs
//! exchange point-to-point messages — exercising both user-buffer kinds
//! (Java arrays and direct ByteBuffers).
//!
//! Run with: `cargo run --example quickstart`

use mvapich2j::datatype::INT;
use mvapich2j::{run_job, JobConfig, ReduceOp, Topology};

fn main() {
    let cfg = JobConfig::mvapich2j(Topology::single_node(4));

    let results = run_job(cfg, |env| {
        let world = env.world();
        let me = env.rank();
        let p = env.size();

        // --- Broadcast over a Java array (through the buffering layer).
        let greeting = env.new_array::<i32>(4).unwrap();
        if me == 0 {
            for (i, v) in [2026, 7, 5, 42].into_iter().enumerate() {
                env.array_set(greeting, i, v).unwrap();
            }
        }
        env.bcast_array(greeting, 4, 0, world).unwrap();
        assert_eq!(env.array_get(greeting, 3).unwrap(), 42);

        // --- Allreduce over direct ByteBuffers (zero-copy to native).
        let send = env.new_direct(8);
        let recv = env.new_direct(8);
        env.direct_put::<i32>(send, 0, me as i32).unwrap();
        env.direct_put::<i32>(send, 4, 1).unwrap();
        env.allreduce_buffer(send, recv, 2, &INT, ReduceOp::Sum, world)
            .unwrap();
        let rank_sum = env.direct_get::<i32>(recv, 0).unwrap();
        let count = env.direct_get::<i32>(recv, 4).unwrap();
        assert_eq!(rank_sum as usize, p * (p - 1) / 2);
        assert_eq!(count as usize, p);

        // --- Ping-pong between even/odd pairs (arrays, blocking).
        let token = env.new_array::<i32>(1).unwrap();
        if me % 2 == 0 && me + 1 < p {
            env.array_set(token, 0, (me * 100) as i32).unwrap();
            env.send_array(token, 1, me + 1, 7, world).unwrap();
            env.recv_array(token, 1, (me + 1) as i32, 8, world).unwrap();
            assert_eq!(env.array_get(token, 0).unwrap(), (me * 100 + 1) as i32);
        } else if me % 2 == 1 {
            env.recv_array(token, 1, (me - 1) as i32, 7, world).unwrap();
            let v = env.array_get(token, 0).unwrap();
            env.array_set(token, 0, v + 1).unwrap();
            env.send_array(token, 1, me - 1, 8, world).unwrap();
        }

        env.barrier(world).unwrap();
        (me, rank_sum, env.wtime() * 1e6) // virtual µs spent
    });

    println!("rank  rank-sum  virtual-us");
    for (rank, sum, us) in results {
        println!("{rank:>4}  {sum:>8}  {us:>10.2}");
    }
    println!("quickstart OK: bcast, allreduce, and ping-pong all verified");
}
