//! 1-D heat-diffusion stencil with halo exchange — the classic Java HPC
//! workload the paper's introduction motivates.
//!
//! The global domain is split across ranks; each iteration exchanges
//! one-cell halos with the left/right neighbours (non-blocking array
//! operations — the capability MVAPICH2-J adds over Open MPI-J) and then
//! applies the 3-point stencil. Convergence is checked with an
//! allreduce every few steps, and the final result is verified against a
//! sequential reference computed on rank 0.
//!
//! Run with: `cargo run --example stencil_halo`

use mvapich2j::datatype::DOUBLE;
use mvapich2j::{run_job, JobConfig, ReduceOp, Topology};

const CELLS_PER_RANK: usize = 64;
const STEPS: usize = 200;
const ALPHA: f64 = 0.25;

fn main() {
    let topo = Topology::new(2, 2); // 4 ranks over 2 simulated nodes
    let p = topo.size();
    let n_global = CELLS_PER_RANK * p;

    // Sequential reference on the host (plain Rust).
    let mut reference: Vec<f64> = (0..n_global)
        .map(|i| if i == n_global / 2 { 1000.0 } else { 0.0 })
        .collect();
    for _ in 0..STEPS {
        let prev = reference.clone();
        for i in 1..n_global - 1 {
            reference[i] = prev[i] + ALPHA * (prev[i - 1] - 2.0 * prev[i] + prev[i + 1]);
        }
    }

    let results = run_job(JobConfig::mvapich2j(topo), |env| {
        let world = env.world();
        let me = env.rank();
        let p = env.size();
        let n = CELLS_PER_RANK;

        // Local domain with two ghost cells: [ghostL | n cells | ghostR].
        let cur = env.new_array::<f64>(n + 2).unwrap();
        let next = env.new_array::<f64>(n + 2).unwrap();
        let halo = env.new_array::<f64>(1).unwrap();

        // Initial condition: a hot spike in the middle of the domain.
        for i in 0..n {
            let gi = me * n + i;
            let v = if gi == (n * p) / 2 { 1000.0 } else { 0.0 };
            env.array_set(cur, i + 1, v).unwrap();
        }

        for _step in 0..STEPS {
            // Halo exchange with neighbours using non-blocking array ops.
            let mut reqs = Vec::new();
            if me > 0 {
                env.send_array_slice(cur, 1, 1, me - 1, 1, world).unwrap();
                reqs.push(env.irecv_array(halo, 1, (me - 1) as i32, 2, world).unwrap());
            }
            let halo_r = env.new_array::<f64>(1).unwrap();
            if me + 1 < p {
                env.send_array_slice(cur, n, 1, me + 1, 2, world).unwrap();
                reqs.push(
                    env.irecv_array(halo_r, 1, (me + 1) as i32, 1, world)
                        .unwrap(),
                );
            }
            env.waitall(reqs).unwrap();
            if me > 0 {
                let v = env.array_get(halo, 0).unwrap();
                env.array_set(cur, 0, v).unwrap();
            }
            if me + 1 < p {
                let v = env.array_get(halo_r, 0).unwrap();
                env.array_set(cur, n + 1, v).unwrap();
            }
            env.free_array(halo_r).unwrap();

            // 3-point stencil. Physical domain boundaries stay fixed.
            for i in 1..=n {
                let gi = me * n + (i - 1);
                if gi == 0 || gi == n * p - 1 {
                    let v = env.array_get(cur, i).unwrap();
                    env.array_set(next, i, v).unwrap();
                    continue;
                }
                let l = env.array_get(cur, i - 1).unwrap();
                let c = env.array_get(cur, i).unwrap();
                let r = env.array_get(cur, i + 1).unwrap();
                env.array_set(next, i, c + ALPHA * (l - 2.0 * c + r))
                    .unwrap();
            }
            // Swap by copying next -> cur (references are immutable).
            let mut row = vec![0.0; n];
            env.array_read(next, 1, &mut row).unwrap();
            env.array_write(cur, 1, &row).unwrap();
        }

        // Global heat total must be conserved: check via allreduce.
        let mut local = vec![0.0f64; n];
        env.array_read(cur, 1, &mut local).unwrap();
        let local_sum: f64 = local.iter().sum();
        let send = env.new_direct(8);
        let recv = env.new_direct(8);
        env.direct_put::<f64>(send, 0, local_sum).unwrap();
        env.allreduce_buffer(send, recv, 1, &DOUBLE, ReduceOp::Sum, world)
            .unwrap();
        let total = env.direct_get::<f64>(recv, 0).unwrap();

        (me, local, total, env.wtime() * 1e6)
    });

    // Verify against the sequential reference.
    let total = results[0].2;
    assert!(
        (total - 1000.0).abs() < 1e-6,
        "heat must be conserved: {total}"
    );
    let mut max_err = 0.0f64;
    for (rank, local, _, _) in &results {
        for (i, v) in local.iter().enumerate() {
            let gi = rank * CELLS_PER_RANK + i;
            max_err = max_err.max((v - reference[gi]).abs());
        }
    }
    println!(
        "stencil_halo: {STEPS} steps on {} ranks over {} cells",
        p, n_global
    );
    println!("  conserved heat   : {total:.6}");
    println!("  max |err| vs ref : {max_err:.3e}");
    println!("  virtual time     : {:.1} us per rank", results[0].3);
    assert!(
        max_err < 1e-9,
        "distributed result must match the reference"
    );
    println!("stencil_halo OK");
}
