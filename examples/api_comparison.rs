//! The paper's central user-facing question, as a runnable demo: should a
//! Java HPC application use direct ByteBuffers or Java arrays?
//!
//! Reproduces the Section VI-F insight end-to-end: at the OMB-J level
//! (communication only) ByteBuffers win; once the application also has to
//! *produce and consume* the data element-by-element, arrays win past a
//! few hundred bytes.
//!
//! Run with: `cargo run --release --example api_comparison`

use mvapich2j::{run_job, JobConfig, Topology};
use ombj::pt2pt::lat_impl;
use ombj::{Api, BenchOptions};

fn main() {
    let topo = Topology::new(2, 1); // inter-node pair, like Figure 18
    let base = BenchOptions {
        min_size: 4,
        max_size: 1 << 20,
        iterations: 40,
        warmup: 4,
        iterations_large: 8,
        warmup_large: 1,
        ..BenchOptions::default()
    };

    let run_mode = |validate: bool, api: Api| -> Vec<(usize, f64)> {
        let opts = BenchOptions { validate, ..base };
        let results = run_job(JobConfig::mvapich2j(topo), move |env| {
            lat_impl(env, &opts, api).expect("latency benchmark runs")
        });
        results[0].iter().map(|p| (p.size, p.value)).collect()
    };

    let comm_buf = run_mode(false, Api::Buffer);
    let comm_arr = run_mode(false, Api::Arrays);
    let app_buf = run_mode(true, Api::Buffer);
    let app_arr = run_mode(true, Api::Arrays);

    println!("inter-node one-way latency (us), MVAPICH2-J");
    println!(
        "{:>9}  {:>12} {:>12}  {:>12} {:>12}   winner",
        "size", "comm:buffer", "comm:arrays", "app:buffer", "app:arrays"
    );
    let mut crossover: Option<usize> = None;
    for i in 0..comm_buf.len() {
        let (size, cb) = comm_buf[i];
        let ca = comm_arr[i].1;
        let ab = app_buf[i].1;
        let aa = app_arr[i].1;
        let winner = if aa < ab { "arrays" } else { "buffer" };
        if aa < ab && crossover.is_none() {
            crossover = Some(size);
        }
        println!("{size:>9}  {cb:>12.2} {ca:>12.2}  {ab:>12.2} {aa:>12.2}   {winner}");
    }

    println!();
    println!("communication only : buffers win at every size (no staging copy)");
    match crossover {
        Some(s) => {
            println!("with data handling : arrays overtake buffers at {s} B (paper: past 256 B)")
        }
        None => println!("with data handling : no crossover observed in this sweep"),
    }
    let last = comm_buf.len() - 1;
    println!(
        "at {} B the array API is {:.1}x faster end-to-end (paper: ~3x at 4 MB)",
        comm_buf[last].0,
        app_buf[last].1 / app_arr[last].1
    );
}
